"""Human-readable run reports over parsed telemetry (`repro report`).

`render_report` turns a `ParsedRun` into a text report: provenance
header, an indented span timeline with total/self wall time and
peak-RSS attribution, a text flamegraph, PathFinder-convergence and
anneal-trajectory summaries, and the metrics snapshot.  `render_html`
emits the same content as a dependency-free standalone HTML page
(nested ``<details>`` for the span tree).
"""

from __future__ import annotations

import html as _html
from typing import Dict, List, Optional, Sequence

from .records import ParsedRun, SpanNode

#: Span attrs worth inlining on the timeline (kept short; everything
#: else stays available in the raw JSONL).
_TIMELINE_ATTRS = (
    "circuit", "seed", "variant", "channel_width", "width", "wmin",
    "success", "iterations", "wirelength", "overused_nodes", "clusters",
    "luts", "bles", "cost", "critical_path_s", "nets", "probes",
    "arrays_programmed", "relays_closed", "row_steps", "row_pulses",
    "count", "vpi_spread", "sta_pass", "phase",
)

#: Drop bulky series attrs from inline display.
_BULKY_ATTRS = ("convergence", "trajectory", "profile", "degradation")


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "    open"
    if value >= 100:
        return f"{value:7.1f}s"
    if value >= 0.1:
        return f"{value:7.3f}s"
    return f"{value * 1e3:6.2f}ms"


def _fmt_rss(kb: Optional[int]) -> str:
    if kb is None:
        return "      -"
    return f"{kb / 1024:6.1f}M"


def _fmt_attr(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _inline_attrs(span: SpanNode) -> str:
    parts = [
        f"{key}={_fmt_attr(span.attrs[key])}"
        for key in _TIMELINE_ATTRS
        if key in span.attrs and span.attrs[key] is not None
    ]
    return f"  [{' '.join(parts)}]" if parts else ""


def _manifest_lines(run: ParsedRun) -> List[str]:
    lines = [f"run: {run.source}"]
    manifest = run.manifest
    if manifest is None:
        lines.append("manifest: (none)")
        return lines
    keys = ("created", "python", "platform", "git_sha", "seed",
            "circuit", "suite", "scale", "argv")
    shown = [f"{k}={_fmt_attr(manifest[k])}" for k in keys
             if manifest.get(k) is not None]
    lines.append("manifest: " + ("  ".join(shown) if shown else "(empty)"))
    return lines


def _timeline_lines(run: ParsedRun, max_depth: Optional[int] = None) -> List[str]:
    lines = [f"{'total':>8s} {'self':>8s} {'peakRSS':>7s}  span"]
    for node, depth in run.walk():
        if max_depth is not None and depth > max_depth:
            continue
        marker = "" if node.status == "ok" else f"  !{node.status}"
        lines.append(
            f"{_fmt_seconds(node.duration_s):>8s} {_fmt_seconds(node.self_s):>8s} "
            f"{_fmt_rss(node.peak_rss_kb)}  {'  ' * depth}{node.name}"
            f"{_inline_attrs(node)}{marker}"
        )
    return lines


def _flame_lines(run: ParsedRun, width: int = 40,
                 max_depth: Optional[int] = None) -> List[str]:
    total = run.total_wall_s
    if total <= 0:
        return ["(no recorded wall time)"]
    lines = []
    for node, depth in run.walk():
        if max_depth is not None and depth > max_depth:
            continue
        frac = node.total_s / total
        bar = "#" * max(1, round(frac * width)) if node.total_s > 0 else "."
        lines.append(
            f"{'  ' * depth}{node.name:<{max(1, 30 - 2 * depth)}s} "
            f"{bar:<{width}s} {100 * frac:5.1f}%  {_fmt_seconds(node.duration_s).strip()}"
        )
    return lines


def _convergence_lines(run: ParsedRun) -> List[str]:
    lines = []
    for span in run.find("route.pathfinder"):
        series = span.attrs.get("convergence")
        if not isinstance(series, list) or not series:
            continue
        first, last = series[0], series[-1]
        overuse = [it.get("overused_nodes") for it in series
                   if isinstance(it, dict)]
        peak = max((o for o in overuse if isinstance(o, (int, float))),
                   default=None)
        lines.append(
            f"{span.path}: {len(series)} iterations, overuse "
            f"{_fmt_attr(first.get('overused_nodes'))} -> "
            f"{_fmt_attr(last.get('overused_nodes'))} (peak {_fmt_attr(peak)}), "
            f"pres_fac {_fmt_attr(first.get('pres_fac'))} -> "
            f"{_fmt_attr(last.get('pres_fac'))}, "
            f"wirelength {_fmt_attr(last.get('wirelength'))}"
        )
    return lines


def _anneal_lines(run: ParsedRun) -> List[str]:
    lines = []
    for span in run.find("place.anneal"):
        stages = span.attrs.get("trajectory")
        if not isinstance(stages, list) or not stages:
            continue
        first, last = stages[0], stages[-1]
        lines.append(
            f"{span.path}: {len(stages)} temperature steps, "
            f"T {_fmt_attr(first.get('temperature'))} -> "
            f"{_fmt_attr(last.get('temperature'))}, "
            f"cost {_fmt_attr(first.get('cost'))} -> {_fmt_attr(last.get('cost'))}, "
            f"acceptance {_fmt_attr(first.get('acceptance_rate'))} -> "
            f"{_fmt_attr(last.get('acceptance_rate'))}"
        )
    return lines


def _mission_spans(run: ParsedRun):
    """(span, degradation curve) for every lifetime-mission run."""
    found = []
    for span in run.find("mission.run"):
        curve = span.attrs.get("degradation")
        if isinstance(curve, list) and curve:
            found.append((span, curve))
    return found


def _mission_lines(run: ParsedRun) -> List[str]:
    lines = []
    for span, curve in _mission_spans(run):
        last = curve[-1]
        ttf = span.attrs.get("ttf_years")
        lines.append(
            f"{span.path}: policy={span.attrs.get('policy')} "
            f"{len(curve)} epochs over {_fmt_attr(span.attrs.get('years'))} "
            f"device-years, final yield {_fmt_attr(last.get('yield'))}, "
            f"ttf {'-' if ttf is None else _fmt_attr(ttf)}, "
            f"W {_fmt_attr(curve[0].get('mean_channel_width'))} -> "
            f"{_fmt_attr(last.get('mean_channel_width'))}"
        )
        for row in curve:
            lines.append(
                f"  epoch {row.get('epoch')}: "
                f"yield {_fmt_attr(row.get('yield'))} "
                f"defects {_fmt_attr(row.get('mean_defects'))} "
                f"W {_fmt_attr(row.get('mean_channel_width'))} "
                f"wl.ovh {_fmt_attr(row.get('mean_wirelength_overhead'))} "
                f"repairs {row.get('repairs')} bist {row.get('bist_runs')} "
                f"dead {row.get('dead')}"
            )
    return lines


def _profiled_spans(run: ParsedRun):
    """(span, profile attr) for every span carrying sampler output."""
    found = []
    for node, _depth in run.walk():
        profile = node.attrs.get("profile")
        if isinstance(profile, dict) and profile.get("stacks"):
            found.append((node, profile))
    return found


def _short_stack(stack: str, keep: int = 3) -> str:
    frames = stack.split(";")
    if len(frames) <= keep:
        return stack
    return "…;" + ";".join(frames[-keep:])


def _profile_lines(run: ParsedRun, top: int = 8) -> List[str]:
    lines: List[str] = []
    for node, profile in _profiled_spans(run):
        stacks: Dict[str, object] = profile.get("stacks") or {}
        counts = {s: int(c) for s, c in stacks.items()
                  if isinstance(s, str) and isinstance(c, (int, float))}
        total = sum(counts.values())
        if not total:
            continue
        lines.append(
            f"{node.path}: {total} samples @ "
            f"{_fmt_attr(profile.get('interval_s'))}s "
            f"({profile.get('backend')} backend)")
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        for stack, count in ranked[:top]:
            lines.append(f"  {100.0 * count / total:5.1f}%  "
                         f"{_short_stack(stack)}")
        if len(ranked) > top:
            lines.append(f"  ... {len(ranked) - top} more stacks")
    return lines


def _flame_trie(stacks: Dict[str, object]) -> Dict[str, object]:
    """Collapsed stacks -> a merged call-tree (name, value, children)."""
    root: Dict[str, object] = {"name": "all", "value": 0, "children": {}}
    for stack, count in sorted(stacks.items()):
        if not isinstance(stack, str) or not isinstance(count, (int, float)):
            continue
        count = int(count)
        root["value"] += count
        node = root
        for frame in stack.split(";"):
            children: Dict[str, Dict[str, object]] = node["children"]
            child = children.get(frame)
            if child is None:
                child = children[frame] = {"name": frame, "value": 0,
                                           "children": {}}
            child["value"] += count
            node = child
    return root


def _metric_lines(run: ParsedRun) -> List[str]:
    lines = []
    for name in sorted(run.metrics):
        snap = run.metrics[name]
        kind = snap.get("kind", "?")
        if kind == "histogram":
            body = "  ".join(
                f"{key}={_fmt_attr(snap[key])}" for key in
                ("count", "mean", "min", "p50", "p90", "p95", "max")
                if snap.get(key) is not None
            )
        else:
            body = f"value={_fmt_attr(snap.get('value'))}"
        lines.append(f"{name:<36s} {kind:<9s} {body}")
    return lines


def _section(title: str, lines: Sequence[str]) -> List[str]:
    if not lines:
        return []
    return ["", title, "-" * len(title), *lines]


def render_report(run: ParsedRun, flame: bool = True,
                  max_depth: Optional[int] = None) -> str:
    """The full text report for one parsed run."""
    out: List[str] = _manifest_lines(run)
    if run.warnings:
        out += _section(f"warnings ({len(run.warnings)})",
                        [f"- {w}" for w in run.warnings])
    if run.spans:
        out += _section("span timeline", _timeline_lines(run, max_depth))
        if flame:
            out += _section("flamegraph (share of run wall time)",
                            _flame_lines(run, max_depth=max_depth))
    else:
        out += ["", "(no span records)"]
    out += _section("pathfinder convergence", _convergence_lines(run))
    out += _section("anneal trajectory", _anneal_lines(run))
    out += _section("mission degradation", _mission_lines(run))
    out += _section("profiler hot stacks", _profile_lines(run))
    out += _section("metrics", _metric_lines(run))
    return "\n".join(out) + "\n"


def _html_span(node: SpanNode, total: float) -> str:
    pct = 100.0 * node.total_s / total if total > 0 else 0.0
    attrs = {k: v for k, v in node.attrs.items() if k not in _BULKY_ATTRS}
    attr_text = _html.escape(
        "  ".join(f"{k}={_fmt_attr(v)}" for k, v in sorted(attrs.items()))
    )
    label = (
        f"<code>{_html.escape(node.name)}</code> "
        f"<b>{_html.escape(_fmt_seconds(node.duration_s).strip())}</b> "
        f"(self {_html.escape(_fmt_seconds(node.self_s).strip())}, {pct:.1f}%)"
        + (f" <span class=err>{_html.escape(node.status)}</span>"
           if node.status != "ok" else "")
    )
    bar = (f"<div class=bar><div class=fill style='width:{pct:.2f}%'>"
           "</div></div>")
    body = f"<div class=attrs>{attr_text}</div>" if attr_text else ""
    if not node.children:
        return f"<li>{label}{bar}{body}</li>"
    children = "".join(_html_span(c, total) for c in node.children)
    return (f"<li><details open><summary>{label}</summary>{bar}{body}"
            f"<ul>{children}</ul></details></li>")


def _html_flame_node(node: Dict[str, object]) -> str:
    """One flamegraph cell: label plus a flex row of children whose
    widths are their sample share of this node."""
    value = int(node["value"]) or 1
    label = _html.escape(f"{node['name']} ({node['value']})")
    out = f"<div class=flabel title='{label}'>{label}</div>"
    children = sorted(node["children"].values(),
                      key=lambda c: (-int(c["value"]), str(c["name"])))
    if children:
        cells = "".join(
            f"<div class=fcell style='width:{100.0 * int(c['value']) / value:.2f}%'>"
            f"{_html_flame_node(c)}</div>"
            for c in children
        )
        out += f"<div class=frow>{cells}</div>"
    return out


def _html_flame_sections(run: ParsedRun) -> List[str]:
    sections = []
    for node, profile in _profiled_spans(run):
        trie = _flame_trie(profile.get("stacks") or {})
        if not trie["value"]:
            continue
        caption = _html.escape(
            f"{node.path} — {trie['value']} samples @ "
            f"{_fmt_attr(profile.get('interval_s'))}s "
            f"({profile.get('backend')} backend)")
        sections.append(f"<h3>{caption}</h3>"
                        f"<div class=flame>{_html_flame_node(trie)}</div>")
    return sections


def _diff_trie(pairs: Dict[str, "Tuple[float, float]"],
               sep: str) -> Dict[str, object]:
    """Leaf-attributed (a, b) weights -> a merged differential tree.

    ``pairs`` maps a ``sep``-joined path to that *node's own* (A, B)
    weight — raw self seconds for span paths, sample counts for
    collapsed profiler stacks.  Interior values accumulate from the
    leaves so a node's width is its subtree weight, exactly like the
    single-run flame trie.
    """
    root: Dict[str, object] = {"name": "all", "a": 0.0, "b": 0.0,
                               "children": {}}
    for path, (a, b) in sorted(pairs.items()):
        node = root
        node["a"] += a
        node["b"] += b
        for frame in path.split(sep):
            children: Dict[str, Dict[str, object]] = node["children"]
            child = children.get(frame)
            if child is None:
                child = children[frame] = {"name": frame, "a": 0.0, "b": 0.0,
                                           "children": {}}
            child["a"] += a
            child["b"] += b
            node = child
    return root


def _diff_color(a: float, b: float, scale: float) -> str:
    """Red for slower in B, green for faster, intensity by |delta|."""
    delta = b - a
    if scale <= 0 or delta == 0:
        return "#e8e8e8"
    strength = min(1.0, abs(delta) / scale)
    # Lighten towards white as the delta shrinks.
    fade = int(232 - 120 * strength)
    return (f"rgb(244,{fade},{fade})" if delta > 0
            else f"rgb({fade},236,{fade})")


def _html_diff_flame_node(node: Dict[str, object], scale: float,
                          fmt) -> str:
    a, b = float(node["a"]), float(node["b"])
    weight = max(a, b) or 1.0
    label = f"{node['name']}  {fmt(a)} → {fmt(b)} ({fmt(b - a, signed=True)})"
    esc = _html.escape(label)
    color = _diff_color(a, b, scale)
    out = (f"<div class=flabel style='background:{color}' "
           f"title='{esc}'>{esc}</div>")
    children = sorted(node["children"].values(),
                      key=lambda c: (-max(float(c["a"]), float(c["b"])),
                                     str(c["name"])))
    if children:
        cells = "".join(
            f"<div class=fcell style='width:"
            f"{100.0 * (max(float(c['a']), float(c['b'])) or 0.0) / weight:.2f}%'>"
            f"{_html_diff_flame_node(c, scale, fmt)}</div>"
            for c in children
        )
        out += f"<div class=frow>{cells}</div>"
    return out


def _fmt_diff_seconds(value: float, signed: bool = False) -> str:
    text = f"{value:+.3f}s" if signed else f"{value:.3f}s"
    return text


def _fmt_diff_samples(value: float, signed: bool = False) -> str:
    return f"{value:+.0f}" if signed else f"{value:.0f}"


def render_attribution_html(attr) -> str:
    """Standalone HTML differential report for an `Attribution`
    (`repro db attribute --html`): summary header, per-span
    contribution table, stage roll-up, critical paths, a differential
    span flamegraph, and — when both runs carried the sampling
    profiler — a differential flamegraph over the collapsed profiler
    stacks (red = B slower / more samples, green = faster / fewer).
    """
    from .attribution import Attribution, format_attribution  # noqa: F401

    sections: List[str] = []
    sections.append(
        "<p>"
        f"A: <code>{_html.escape(attr.source_a)}</code><br>"
        f"B: <code>{_html.escape(attr.source_b)}</code><br>"
        f"end-to-end <b>{attr.total_a:.4f}s → {attr.total_b:.4f}s</b> "
        f"(delta {attr.total_delta:+.4f}s), attributed "
        f"{attr.attributed_delta:+.4f}s, residual {attr.residual:+.2e}s"
        "</p>")

    moved = [d for d in attr.deltas if d.delta_self != 0]
    if moved:
        rows = "".join(
            "<tr>"
            f"<td class=num>{d.delta_self:+.4f}</td>"
            f"<td class=num>{d.self_a:.4f}</td>"
            f"<td class=num>{d.self_b:.4f}</td>"
            f"<td><code>{_html.escape(d.path)}</code></td>"
            "</tr>"
            for d in moved[:30]
        )
        sections.append(
            "<h2>per-span contributions (self-time)</h2>"
            "<table><tr><th>delta s</th><th>A self</th><th>B self</th>"
            f"<th>span path</th></tr>{rows}</table>")

    if attr.stages:
        rows = "".join(
            "<tr>"
            f"<td>{_html.escape(name)}</td>"
            f"<td class=num>{'-' if s.wall_a is None else format(s.wall_a, '.4f')}</td>"
            f"<td class=num>{'-' if s.wall_b is None else format(s.wall_b, '.4f')}</td>"
            f"<td class=num>{'-' if s.delta is None else format(s.delta, '+.4f')}</td>"
            "</tr>"
            for name, s in sorted(attr.stages.items())
        )
        sections.append(
            "<h2>stage roll-up</h2>"
            "<table><tr><th>stage</th><th>A s</th><th>B s</th>"
            f"<th>delta s</th></tr>{rows}</table>")

    for label, chain in (("A", attr.critical_a), ("B", attr.critical_b)):
        if not chain:
            continue
        body = "\n".join(
            f"{e.duration_s:10.4f}s  "
            + (f"j{e.job} " if e.job is not None else "") + e.path
            for e in chain)
        sections.append(f"<h2>critical path {label}</h2>"
                        f"<pre>{_html.escape(body)}</pre>")

    span_pairs = {
        d.path.replace("/", "\x00"): (max(0.0, d.self_a), max(0.0, d.self_b))
        for d in attr.deltas
    }
    if span_pairs:
        trie = _diff_trie(span_pairs, "\x00")
        scale = max((abs(float(c["b"]) - float(c["a"]))
                     for c in _walk_diff(trie)), default=0.0)
        sections.append(
            "<h2>differential flamegraph (span self-time, red = slower)</h2>"
            f"<div class=flame>"
            f"{_html_diff_flame_node(trie, scale, _fmt_diff_seconds)}</div>")

    if attr.profile_a or attr.profile_b:
        stacks = {
            stack: (float(attr.profile_a.get(stack, 0)),
                    float(attr.profile_b.get(stack, 0)))
            for stack in set(attr.profile_a) | set(attr.profile_b)
        }
        trie = _diff_trie(stacks, ";")
        scale = max((abs(float(c["b"]) - float(c["a"]))
                     for c in _walk_diff(trie)), default=0.0)
        sections.append(
            "<h2>differential profile flamegraph (samples, red = more)</h2>"
            f"<div class=flame>"
            f"{_html_diff_flame_node(trie, scale, _fmt_diff_samples)}</div>")

    style = (
        "body{font-family:monospace;margin:2em;max-width:80em}"
        "table{border-collapse:collapse;margin:0.5em 0}"
        "td,th{border:1px solid #ddd;padding:2px 8px;text-align:left}"
        "td.num{text-align:right}"
        ".flame{border:1px solid #ddd;padding:4px;margin:4px 0}"
        ".frow{display:flex}"
        ".fcell{overflow:hidden;border-left:1px solid #fff;min-width:1px}"
        ".flabel{white-space:nowrap;overflow:hidden;text-overflow:ellipsis;"
        "font-size:75%;padding:0 2px}"
    )
    title = f"repro attribution: {attr.source_a} vs {attr.source_b}"
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{_html.escape(title)}</title>"
        f"<style>{style}</style></head><body>"
        f"<h1>repro regression attribution</h1>{''.join(sections)}"
        "</body></html>"
    )


def _walk_diff(node: Dict[str, object]):
    yield node
    for child in node["children"].values():
        yield from _walk_diff(child)


def _svg_curve_chart(title: str, curve: List[Dict[str, object]], key: str,
                     lo: Optional[float] = None,
                     hi: Optional[float] = None,
                     color: str = "#4a7") -> str:
    """One metric over epochs as a dependency-free inline SVG chart."""
    xs = [float(row.get("epoch") or 0) for row in curve]
    ys = [float(row.get(key) or 0.0) for row in curve]
    if not xs:
        return ""
    y_lo = min(ys) if lo is None else lo
    y_hi = max(ys) if hi is None else hi
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    width, height, pad = 420, 130, 30
    x_span = max(1.0, xs[-1] - xs[0])

    def sx(x: float) -> float:
        return pad + (width - 2 * pad) * (x - xs[0]) / x_span

    def sy(y: float) -> float:
        return height - pad - (height - 2 * pad) * (y - y_lo) / (y_hi - y_lo)

    points = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys))
    dots = "".join(
        f"<circle cx='{sx(x):.1f}' cy='{sy(y):.1f}' r='2.5' fill='{color}'/>"
        for x, y in zip(xs, ys))
    axis = (f"<line x1='{pad}' y1='{height - pad}' x2='{width - pad}' "
            f"y2='{height - pad}' stroke='#999'/>"
            f"<line x1='{pad}' y1='{pad}' x2='{pad}' "
            f"y2='{height - pad}' stroke='#999'/>")
    labels = (
        f"<text x='{pad}' y='{pad - 8}' font-size='11'>"
        f"{_html.escape(title)}</text>"
        f"<text x='{pad - 4}' y='{sy(y_hi) + 4}' font-size='9' "
        f"text-anchor='end'>{_fmt_attr(y_hi)}</text>"
        f"<text x='{pad - 4}' y='{sy(y_lo) + 4}' font-size='9' "
        f"text-anchor='end'>{_fmt_attr(y_lo)}</text>"
        f"<text x='{sx(xs[0]):.1f}' y='{height - pad + 12}' font-size='9' "
        f"text-anchor='middle'>e{_fmt_attr(xs[0])}</text>"
        f"<text x='{sx(xs[-1]):.1f}' y='{height - pad + 12}' font-size='9' "
        f"text-anchor='middle'>e{_fmt_attr(xs[-1])}</text>")
    return (
        f"<svg class=chart width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}' xmlns='http://www.w3.org/2000/svg'>"
        f"{axis}{labels}"
        f"<polyline points='{points}' fill='none' stroke='{color}' "
        f"stroke-width='1.5'/>{dots}</svg>")


def _html_mission_sections(run: ParsedRun) -> List[str]:
    sections = []
    for span, curve in _mission_spans(run):
        ttf = span.attrs.get("ttf_years")
        caption = _html.escape(
            f"{span.path} — policy {span.attrs.get('policy')}, "
            f"{len(curve)} epochs over "
            f"{_fmt_attr(span.attrs.get('years'))} device-years, "
            f"ttf {'-' if ttf is None else _fmt_attr(ttf)}")
        charts = (
            _svg_curve_chart("yield", curve, "yield", lo=0.0, hi=1.0)
            + _svg_curve_chart("mean channel width", curve,
                               "mean_channel_width", color="#47a")
            + _svg_curve_chart("mean wirelength overhead", curve,
                               "mean_wirelength_overhead", lo=0.0,
                               color="#a47"))
        sections.append(f"<h3>{caption}</h3><div>{charts}</div>")
    return sections


def render_html(run: ParsedRun) -> str:
    """Standalone HTML report (no external assets)."""
    total = run.total_wall_s
    sections: List[str] = []
    manifest_text = "<br>".join(_html.escape(l) for l in _manifest_lines(run))
    sections.append(f"<p>{manifest_text}</p>")
    if run.warnings:
        items = "".join(f"<li>{_html.escape(w)}</li>" for w in run.warnings)
        sections.append(f"<h2>warnings</h2><ul class=warn>{items}</ul>")
    if run.spans:
        spans = "".join(_html_span(root, total) for root in run.spans)
        sections.append(f"<h2>spans</h2><ul class=spans>{spans}</ul>")
    missions = _html_mission_sections(run)
    if missions:
        sections.append("<h2>mission degradation</h2>" + "".join(missions))
    flames = _html_flame_sections(run)
    if flames:
        sections.append("<h2>profile flamegraphs</h2>" + "".join(flames))
    for title, lines in (
        ("pathfinder convergence", _convergence_lines(run)),
        ("anneal trajectory", _anneal_lines(run)),
        ("metrics", _metric_lines(run)),
    ):
        if lines:
            body = "\n".join(_html.escape(l) for l in lines)
            sections.append(f"<h2>{title}</h2><pre>{body}</pre>")
    style = (
        "body{font-family:monospace;margin:2em;max-width:70em}"
        "ul{list-style:none;padding-left:1.2em}"
        ".bar{background:#eee;height:6px;max-width:30em;margin:2px 0}"
        ".fill{background:#4a7;height:6px}"
        ".attrs{color:#666;font-size:85%}"
        ".err{color:#b00;font-weight:bold}"
        "ul.warn{color:#960}"
        ".chart{margin:4px 8px 4px 0;border:1px solid #eee}"
        ".flame{border:1px solid #ddd;padding:4px;margin:4px 0}"
        ".frow{display:flex}"
        ".fcell{overflow:hidden;background:#fb7;border-left:1px solid #fff}"
        ".flabel{white-space:nowrap;overflow:hidden;text-overflow:ellipsis;"
        "font-size:75%;padding:0 2px;background:#fd9}"
    )
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>repro report: {_html.escape(run.source)}</title>"
        f"<style>{style}</style></head><body>"
        f"<h1>repro run report</h1>{''.join(sections)}</body></html>"
    )
