"""Run-to-run telemetry diffing with regression gates (`repro diff`).

Two exported runs are reduced to flat *measurement* maps (name ->
number), aligned by key, and compared:

* spans align by their stable path (``span.<path>.wall_s`` and every
  numeric span attribute),
* stages align by alias (``route.wall_s``, ``pack.clusters``,
  ``timing.critical_path_s`` ... — robust to a stage being missing or
  repeated in one run),
* flow results align by circuit (``circuit.<name>.<stage>...``) and
  by evaluated variant (``variant.<kind>.leakage_w`` ...),
* registry metrics align by metric name (``metric.<name>...``).

`Threshold` encodes one ``--fail-on`` gate, e.g.
``route.wall_s>+10%`` ("fail when B's route wall time exceeds A's by
more than 10%") or ``route.wirelength>+0`` (any increase fails).  A
gated key missing from either run is itself a violation — a silent
disappearance must not pass a regression gate.
"""

from __future__ import annotations

import dataclasses
import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

from .records import ParsedRun, SpanNode

#: Stage alias -> span names that implement the stage.  Aliases keep
#: gates readable and stable even if span nesting changes.
STAGE_ALIASES: Dict[str, Tuple[str, ...]] = {
    "flow": ("flow.run", "flow.timing_driven"),
    "pack": ("flow.pack", "pack.vpack"),
    "place": ("flow.place",),
    "anneal": ("place.anneal",),
    "route": ("flow.route", "route.pathfinder"),
    "wmin": ("flow.wmin_search",),
    "timing": ("timing.sta",),
    "evaluate": ("evaluate",),
    "crossbar": ("crossbar.program_fabric",),
    "variation": ("nemrelay.variation_mc",),
}


def _numeric_attrs(span: SpanNode) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for key, value in span.attrs.items():
        if isinstance(value, bool):
            out[key] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def _stage_measurements(spans: Sequence[SpanNode], prefix: str = "") -> Dict[str, float]:
    """Alias-keyed measurements over a span forest."""
    out: Dict[str, float] = {}
    flat: List[SpanNode] = []
    for root in spans:
        flat.extend(node for node, _depth in root.walk())
    for alias, names in STAGE_ALIASES.items():
        matches = [s for s in flat if s.name in names]
        # Prefer the outermost implementing span so wall time is not
        # double-counted when both flow.route and route.pathfinder
        # match the alias.
        primary = [s for s in matches if s.name == names[0]] or matches
        if not primary:
            continue
        out[f"{prefix}{alias}.wall_s"] = sum(s.total_s for s in primary)
        out[f"{prefix}{alias}.count"] = float(len(primary))
        # Attrs come from every matching span, later spans winning, so
        # route.wirelength reflects the final route even with retries.
        for span in matches:
            for key, value in _numeric_attrs(span).items():
                out[f"{prefix}{alias}.{key}"] = value
    return out


def run_measurements(run: ParsedRun) -> Dict[str, float]:
    """Flatten one parsed run into a name -> number measurement map."""
    out: Dict[str, float] = {}
    out["total.wall_s"] = run.total_wall_s

    out.update(_stage_measurements(run.spans))

    # Per-circuit views when flows over several circuits share one run
    # (repro headline): each root with a circuit attr contributes a
    # circuit.<name>. namespace over its own subtree.
    for root in run.spans:
        circuit = root.attrs.get("circuit")
        if isinstance(circuit, str) and circuit:
            out.update(_stage_measurements([root], prefix=f"circuit.{circuit}."))

    # Per-variant evaluation results (critical path, power, area).
    for node, _depth in run.walk():
        if node.name != "evaluate":
            continue
        variant = node.attrs.get("variant")
        if not isinstance(variant, str) or not variant:
            continue
        for key, value in _numeric_attrs(node).items():
            if key != "variant":
                out[f"variant.{variant}.{key}"] = value

    # Every span, addressable by path (the fine-grained alignment).
    for node, _depth in run.walk():
        if node.duration_s is not None:
            out[f"span.{node.path}.wall_s"] = node.duration_s
            out[f"span.{node.path}.self_s"] = node.self_s
        if node.peak_rss_kb is not None:
            out[f"span.{node.path}.rss_kb"] = float(node.peak_rss_kb)
        for key, value in _numeric_attrs(node).items():
            out[f"span.{node.path}.{key}"] = value

    # Metrics-registry snapshot.
    for name in sorted(run.metrics):
        snap = run.metrics[name]
        if snap.get("kind") == "histogram":
            for stat in ("count", "sum", "mean", "min", "max",
                         "p50", "p90", "p95", "p99"):
                value = snap.get(stat)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    out[f"metric.{name}.{stat}"] = float(value)
        else:
            value = snap.get("value")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[f"metric.{name}"] = float(value)
    return out


@dataclasses.dataclass
class DiffEntry:
    """One aligned measurement across two runs (None = absent)."""

    key: str
    a: Optional[float]
    b: Optional[float]

    @property
    def delta(self) -> Optional[float]:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    @property
    def pct(self) -> Optional[float]:
        """Relative change in percent; None when undefined, +-inf for
        growth from exactly zero."""
        delta = self.delta
        if delta is None:
            return None
        if self.a == 0:
            return 0.0 if delta == 0 else math.copysign(math.inf, delta)
        return 100.0 * delta / abs(self.a)


@dataclasses.dataclass
class RunDiff:
    """All aligned measurements of two runs, A (base) vs B (candidate)."""

    source_a: str
    source_b: str
    entries: Dict[str, DiffEntry]

    def get(self, key: str) -> DiffEntry:
        return self.entries.get(key, DiffEntry(key=key, a=None, b=None))

    def changed(self) -> List[DiffEntry]:
        return [e for e in self.entries.values() if e.delta not in (None, 0.0)]


def diff_runs(run_a: ParsedRun, run_b: ParsedRun) -> RunDiff:
    """Align two parsed runs into a `RunDiff` (union of keys)."""
    ma, mb = run_measurements(run_a), run_measurements(run_b)
    entries = {
        key: DiffEntry(key=key, a=ma.get(key), b=mb.get(key))
        for key in sorted(set(ma) | set(mb))
    }
    return RunDiff(source_a=run_a.source, source_b=run_b.source, entries=entries)


_THRESHOLD_RE = re.compile(
    r"^\s*(?P<key>[A-Za-z0-9_.#/\[\]-]+)\s*"
    r"(?P<op>>=|<=|>|<)\s*"
    r"(?P<bound>[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)\s*"
    r"(?P<pct>%?)\s*$"
)


@dataclasses.dataclass(frozen=True)
class Threshold:
    """One regression gate: fail when B-A crosses the bound.

    ``route.wall_s>+10%`` — fail when route wall time grew > 10%.
    ``route.wirelength>+0`` — fail on any wirelength increase.
    ``variant.CMOS_NEM_OPT.leakage_w>+5%`` — leakage regression gate.
    ``timing.critical_path_s<-50%`` — fail on a suspicious *improvement*
    (changes that large usually mean the comparison broke).
    """

    key: str
    op: str
    bound: float
    relative: bool
    raw: str

    def violation(self, entry: DiffEntry) -> Optional[str]:
        """A failure message, or None when the gate passes."""
        if entry.a is None or entry.b is None:
            missing = [label for label, value in
                       (("A", entry.a), ("B", entry.b)) if value is None]
            return (f"{self.raw}: metric {self.key!r} missing from run "
                    f"{' and '.join(missing)}")
        measured = entry.pct if self.relative else entry.delta
        assert measured is not None
        exceeded = {
            ">": measured > self.bound,
            ">=": measured >= self.bound,
            "<": measured < self.bound,
            "<=": measured <= self.bound,
        }[self.op]
        if not exceeded:
            return None
        unit = "%" if self.relative else ""
        return (f"{self.raw}: {self.key} = {entry.a:g} -> {entry.b:g} "
                f"(delta {measured:+.4g}{unit}, bound {self.op}{self.bound:+g}{unit})")


def parse_threshold(spec: str) -> Threshold:
    """Parse one ``--fail-on`` expression; ValueError on bad syntax."""
    match = _THRESHOLD_RE.match(spec)
    if match is None:
        raise ValueError(
            f"bad threshold {spec!r}: expected <metric><op><signed-number>[%], "
            "e.g. 'route.wall_s>+10%' or 'route.wirelength>+0'"
        )
    return Threshold(
        key=match.group("key"),
        op=match.group("op"),
        bound=float(match.group("bound")),
        relative=match.group("pct") == "%",
        raw=spec.strip(),
    )


@dataclasses.dataclass
class Verdict:
    """Machine-readable outcome of a gated diff."""

    thresholds: List[Threshold]
    violations: List[str]

    @property
    def ok(self) -> bool:
        return not self.violations


def evaluate_thresholds(diff: RunDiff, thresholds: Sequence[Threshold]) -> Verdict:
    violations = []
    for threshold in thresholds:
        message = threshold.violation(diff.get(threshold.key))
        if message is not None:
            violations.append(message)
    return Verdict(thresholds=list(thresholds), violations=violations)


def _fmt_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _fmt_pct(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if math.isinf(value):
        return "+inf%" if value > 0 else "-inf%"
    return f"{value:+.1f}%"


def format_diff(diff: RunDiff, keys: Optional[Sequence[str]] = None,
                only_changed: bool = False) -> str:
    """Signed delta table over ``keys`` (default: the summary namespaces
    — everything except the verbose per-span ``span.`` entries)."""
    if keys is None:
        keys = [k for k in diff.entries if not k.startswith("span.")]
    rows = []
    for key in keys:
        entry = diff.get(key)
        if only_changed and entry.delta in (None, 0.0):
            continue
        rows.append((key, _fmt_value(entry.a), _fmt_value(entry.b),
                     _fmt_value(entry.delta), _fmt_pct(entry.pct)))
    header = ("metric", f"A", f"B", "delta", "delta%")
    widths = [max(len(r[i]) for r in rows + [header]) for i in range(5)]
    lines = [
        f"A: {diff.source_a}",
        f"B: {diff.source_b}",
        "  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip(),
    ]
    for row in rows:
        lines.append("  ".join(
            cell.ljust(w) if i == 0 else cell.rjust(w)
            for i, (cell, w) in enumerate(zip(row, widths))
        ).rstrip())
    if not rows:
        lines.append("(no aligned measurements)")
    return "\n".join(lines) + "\n"


def diff_to_dict(diff: RunDiff, verdict: Optional[Verdict] = None) -> Dict[str, object]:
    """JSON-ready structure for ``repro diff --json``."""
    payload: Dict[str, object] = {
        "a": diff.source_a,
        "b": diff.source_b,
        "metrics": {
            key: {"a": e.a, "b": e.b, "delta": e.delta,
                  "pct": None if e.pct is None or math.isinf(e.pct) else e.pct}
            for key, e in diff.entries.items()
        },
    }
    if verdict is not None:
        payload["ok"] = verdict.ok
        payload["violations"] = list(verdict.violations)
        payload["thresholds"] = [t.raw for t in verdict.thresholds]
    return payload
