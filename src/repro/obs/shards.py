"""Telemetry shard merging for batch runs.

Batch workers (`repro.runner`) each export their job's telemetry as a
JSONL *shard* — span records plus one metrics record, no manifest.
`merge_shards` combines the shards into a single schema-v1 run file
that `repro report` / `repro diff` consume unchanged:

* exactly one ``manifest`` record (supplied by the batch driver),
* every shard's ``span`` records, in shard order (the driver passes
  shards in job order, so the merged timeline is deterministic
  regardless of worker completion order),
* one ``metrics`` record merging all shard snapshots.

Metric snapshots merge by kind: counters sum, gauges keep the last
non-null value (shard order), histograms combine count/sum/min/max,
recompute the mean, and — when every input carries the fixed-bound
bucket vector `repro.obs.metrics.Histogram` emits — recover
approximate percentiles by rank-walking the summed buckets (clamped
to the exact merged min/max).  Snapshots without buckets (older
shards, hand-written fixtures) degrade to null percentiles as before.

`assemble_run` is the single assembly path shared with the live
collector (`repro.obs.stream`): a run model built from the live event
stream is byte-identical to one merged post-hoc from shard files.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from .export import read_jsonl, write_jsonl


def merge_metric_snapshots(
    snapshots: Iterable[Dict[str, Dict[str, object]]],
) -> Dict[str, Dict[str, object]]:
    """Merge per-shard registry snapshots into one snapshot dict."""
    merged: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        for name, snap in snapshot.items():
            if not isinstance(snap, dict):
                continue
            have = merged.get(name)
            if have is None:
                merged[name] = dict(snap)
                continue
            kind = snap.get("kind")
            if kind != have.get("kind"):
                # Conflicting kinds across shards: keep the first, the
                # merged record stays renderable either way.
                continue
            if kind == "counter":
                have["value"] = _num(have.get("value")) + _num(snap.get("value"))
            elif kind == "gauge":
                if snap.get("value") is not None:
                    have["value"] = snap["value"]
            elif kind == "histogram":
                _merge_histogram(have, snap)
    return merged


def _hist_sum(snap: Dict[str, object]) -> float:
    """A snapshot's observation sum; falls back to ``mean * count`` so
    the merged mean stays count-weighted even for inputs (older shards,
    hand-written fixtures) that carry a mean but no sum."""
    value = snap.get("sum")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    mean, count = snap.get("mean"), snap.get("count")
    if isinstance(mean, (int, float)) and isinstance(count, (int, float)):
        return float(mean) * float(count)
    return 0.0


def _merge_histogram(have: Dict[str, object], snap: Dict[str, object]) -> None:
    count = _num(have.get("count")) + _num(snap.get("count"))
    total = _hist_sum(have) + _hist_sum(snap)
    lo = _extreme(have.get("min"), snap.get("min"), min)
    hi = _extreme(have.get("max"), snap.get("max"), max)
    buckets: Optional[List[List[object]]] = None
    if isinstance(have.get("buckets"), list) and isinstance(snap.get("buckets"), list):
        buckets = _merge_buckets(have["buckets"], snap["buckets"])
    have.update(
        count=count,
        sum=total,
        min=lo,
        max=hi,
        mean=(total / count) if count else None,
        p50=_bucket_percentile(buckets, 50.0, lo, hi),
        p90=_bucket_percentile(buckets, 90.0, lo, hi),
        p95=_bucket_percentile(buckets, 95.0, lo, hi),
        p99=_bucket_percentile(buckets, 99.0, lo, hi),
    )
    if buckets is not None:
        have["buckets"] = buckets
    else:
        # Mixed with-buckets/without-buckets inputs: without the full
        # vector the merged distribution is unknown, drop it.
        have.pop("buckets", None)


def _merge_buckets(
    a: List[object], b: List[object],
) -> List[List[object]]:
    """Sum two ``[upper_bound, count]`` vectors (None bound = overflow)."""
    combined: Dict[Optional[float], int] = {}
    for pairs in (a, b):
        for pair in pairs:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                continue
            bound, count = pair
            key = None if bound is None else float(bound)
            combined[key] = combined.get(key, 0) + int(_num(count))
    ordered: List[List[object]] = [
        [bound, combined[bound]]
        for bound in sorted(k for k in combined if k is not None)
    ]
    if None in combined:
        ordered.append([None, combined[None]])
    return ordered


def _bucket_percentile(
    buckets: Optional[List[List[object]]],
    p: float,
    lo: Optional[float],
    hi: Optional[float],
) -> Optional[float]:
    """Nearest-rank percentile over summed buckets, clamped to [lo, hi].

    The answer is the upper bound of the bucket holding the rank — an
    over-estimate by at most one bucket width, pulled back into the
    exact observed range (min/max merge losslessly, so the clamp is
    tight at the tails).
    """
    if not buckets:
        return None
    total = sum(int(_num(count)) for _, count in buckets)
    if total <= 0:
        return None
    rank = max(1, math.ceil(p / 100.0 * total))
    value: Optional[float] = None
    cumulative = 0
    for bound, count in buckets:
        cumulative += int(_num(count))
        if cumulative >= rank:
            value = None if bound is None else float(bound)
            break
    if value is None:  # overflow bucket: best answer is the exact max
        value = hi if isinstance(hi, (int, float)) else None
        return value
    if isinstance(lo, (int, float)):
        value = max(value, float(lo))
    if isinstance(hi, (int, float)):
        value = min(value, float(hi))
    return value


def _num(value: object) -> float:
    return float(value) if isinstance(value, (int, float)) else 0.0


def _extreme(a: object, b: object, pick) -> Optional[float]:
    values = [v for v in (a, b) if isinstance(v, (int, float))]
    return pick(values) if values else None


def merge_shard_records(
    shards: Iterable[List[Dict[str, object]]],
) -> Tuple[List[Dict[str, object]], Dict[str, Dict[str, object]]]:
    """(span records, merged metrics snapshot) from raw shard records.

    Shard-level manifests are dropped (the batch driver writes the one
    authoritative manifest); unknown record types are dropped too so a
    merged file never triggers reader warnings.
    """
    spans: List[Dict[str, object]] = []
    snapshots: List[Dict[str, Dict[str, object]]] = []
    for records in shards:
        for record in records:
            if not isinstance(record, dict):
                continue
            rtype = record.get("type")
            if rtype == "span":
                spans.append(record)
            elif rtype == "metrics" and isinstance(record.get("metrics"), dict):
                snapshots.append(record["metrics"])
    return spans, merge_metric_snapshots(snapshots)


def assemble_run(
    manifest: Dict[str, object],
    shards: Iterable[List[Dict[str, object]]],
    dropped_events: int = 0,
) -> List[Dict[str, object]]:
    """One schema-v1 record sequence from per-job shard record lists.

    The single assembly path shared by the post-hoc `merge_shards` and
    the live collector (`repro.obs.stream.TelemetryCollector`) — which
    is what makes a live-collected run model byte-identical to the
    shard merge of the same run.  ``dropped_events`` > 0 surfaces as a
    ``telemetry.dropped_events`` counter in the merged metrics record;
    it is omitted when zero so clean runs are unaffected.
    """
    spans, metrics = merge_shard_records(shards)
    if dropped_events:
        metrics["telemetry.dropped_events"] = {
            "kind": "counter",
            "value": float(dropped_events),
        }
    records: List[Dict[str, object]] = [manifest, *spans]
    if metrics:
        records.append({"type": "metrics", "metrics": metrics})
    return records


def merge_shards(
    paths: Iterable[str],
    manifest: Dict[str, object],
    out_path: str,
) -> int:
    """Merge shard files into one schema-v1 run file; records written.

    Tolerates the debris a crashed or killed worker leaves behind:
    missing shard files are skipped (the job may never have started
    writing one), and partial/truncated lines — including a half-flushed
    final line with broken UTF-8 — are dropped per line and counted
    into a ``telemetry.dropped_events`` counter rather than poisoning
    the merged run.
    """
    shards: List[List[Dict[str, object]]] = []
    dropped = 0
    for path in paths:
        try:
            records, bad_lines = read_jsonl(path, strict=False,
                                            return_errors=True)
        except OSError:
            continue
        shards.append(records)
        dropped += len(bad_lines)
    return write_jsonl(out_path, assemble_run(manifest, shards, dropped))
