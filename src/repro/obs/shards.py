"""Telemetry shard merging for batch runs.

Batch workers (`repro.runner`) each export their job's telemetry as a
JSONL *shard* — span records plus one metrics record, no manifest.
`merge_shards` combines the shards into a single schema-v1 run file
that `repro report` / `repro diff` consume unchanged:

* exactly one ``manifest`` record (supplied by the batch driver),
* every shard's ``span`` records, in shard order (the driver passes
  shards in job order, so the merged timeline is deterministic
  regardless of worker completion order),
* one ``metrics`` record merging all shard snapshots.

Metric snapshots merge by kind: counters sum, gauges keep the last
non-null value (shard order), histograms combine count/sum/min/max
and recompute the mean.  Exact percentiles cannot be merged from
snapshots, so they are dropped (null) in the merged record — the
report renderer already skips null histogram fields.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .export import read_jsonl, write_jsonl


def merge_metric_snapshots(
    snapshots: Iterable[Dict[str, Dict[str, object]]],
) -> Dict[str, Dict[str, object]]:
    """Merge per-shard registry snapshots into one snapshot dict."""
    merged: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        for name, snap in snapshot.items():
            if not isinstance(snap, dict):
                continue
            have = merged.get(name)
            if have is None:
                merged[name] = dict(snap)
                continue
            kind = snap.get("kind")
            if kind != have.get("kind"):
                # Conflicting kinds across shards: keep the first, the
                # merged record stays renderable either way.
                continue
            if kind == "counter":
                have["value"] = _num(have.get("value")) + _num(snap.get("value"))
            elif kind == "gauge":
                if snap.get("value") is not None:
                    have["value"] = snap["value"]
            elif kind == "histogram":
                count = _num(have.get("count")) + _num(snap.get("count"))
                total = _num(have.get("sum")) + _num(snap.get("sum"))
                have.update(
                    count=count,
                    sum=total,
                    min=_extreme(have.get("min"), snap.get("min"), min),
                    max=_extreme(have.get("max"), snap.get("max"), max),
                    mean=(total / count) if count else None,
                    p50=None, p90=None, p99=None,
                )
    return merged


def _num(value: object) -> float:
    return float(value) if isinstance(value, (int, float)) else 0.0


def _extreme(a: object, b: object, pick) -> Optional[float]:
    values = [v for v in (a, b) if isinstance(v, (int, float))]
    return pick(values) if values else None


def merge_shard_records(
    shards: Iterable[List[Dict[str, object]]],
) -> Tuple[List[Dict[str, object]], Dict[str, Dict[str, object]]]:
    """(span records, merged metrics snapshot) from raw shard records.

    Shard-level manifests are dropped (the batch driver writes the one
    authoritative manifest); unknown record types are dropped too so a
    merged file never triggers reader warnings.
    """
    spans: List[Dict[str, object]] = []
    snapshots: List[Dict[str, Dict[str, object]]] = []
    for records in shards:
        for record in records:
            if not isinstance(record, dict):
                continue
            rtype = record.get("type")
            if rtype == "span":
                spans.append(record)
            elif rtype == "metrics" and isinstance(record.get("metrics"), dict):
                snapshots.append(record["metrics"])
    return spans, merge_metric_snapshots(snapshots)


def merge_shards(
    paths: Iterable[str],
    manifest: Dict[str, object],
    out_path: str,
) -> int:
    """Merge shard files into one schema-v1 run file; records written.

    Missing shard files are tolerated (a crashed job may never have
    written one); malformed lines are skipped, matching the tolerant
    reader the analysis layer uses.
    """
    shards: List[List[Dict[str, object]]] = []
    for path in paths:
        try:
            shards.append(read_jsonl(path, strict=False))
        except OSError:
            continue
    spans, metrics = merge_shard_records(shards)
    records: List[Dict[str, object]] = [manifest, *spans]
    if metrics:
        records.append({"type": "metrics", "metrics": metrics})
    return write_jsonl(out_path, records)
