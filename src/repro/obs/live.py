"""In-terminal live view of a streaming batch (`repro watch`).

Renders the `TelemetryCollector`'s per-job state as a compact table —
stage, PathFinder iteration, repair-ladder rung, worker RSS, heartbeat
age — refreshed in place on a TTY (ANSI cursor movement, no curses
dependency) and as rate-limited plain snapshots on anything else
(pipes, CI logs), so ``--live`` is safe to leave on everywhere.

Rendering is split pure/IO: `render_rows` builds the table lines from
collector state (unit-testable, no terminal involved), `LiveDisplay`
owns the terminal and the refresh policy.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional

from .stream import JobLiveState, TelemetryCollector

#: Columns: index, job key, status, stage + progress, rss, heartbeat age.
_HEADER = ("job", "status", "stage", "progress", "rss", "hb")

_KEY_WIDTH = 34
_STAGE_WIDTH = 18
_PROGRESS_WIDTH = 30


def format_age(seconds: float) -> str:
    if seconds < 9.95:
        return f"{seconds:.1f}s"
    if seconds < 120:
        return f"{seconds:.0f}s"
    return f"{seconds / 60:.0f}m"


def format_rss(rss_kb: Optional[object]) -> str:
    if not isinstance(rss_kb, (int, float)) or rss_kb <= 0:
        return "-"
    return f"{rss_kb / 1024:.0f}M"


def _clip(text: str, width: int) -> str:
    if len(text) <= width:
        return text
    return text[: width - 1] + "…"


def progress_summary(state: JobLiveState) -> str:
    """The most informative recent progress delta, one short phrase."""
    repair = state.progress.get("repair.stage")
    if repair is not None:
        stage = repair.get("stage", "?")
        ripped = repair.get("nets_ripped")
        extra = f" ripped={ripped}" if ripped is not None else ""
        return f"repair:{stage}{extra}"
    route = state.progress.get("route.iteration")
    if route is not None:
        iteration = route.get("iteration", "?")
        overused = route.get("overused", "?")
        return f"iter {iteration} overuse {overused}"
    probe = state.progress.get("flow.wmin_probe")
    if probe is not None:
        width = probe.get("width", "?")
        phase = probe.get("phase", "?")
        return f"wmin {phase} W={width}"
    return ""


def render_rows(collector: TelemetryCollector,
                stall_after_s: Optional[float] = None,
                now: Optional[float] = None) -> List[str]:
    """Header + one aligned line per job, spec order."""
    now = time.monotonic() if now is None else now
    lines = [
        f"{_HEADER[0]:<{_KEY_WIDTH}} {_HEADER[1]:<8} "
        f"{_HEADER[2]:<{_STAGE_WIDTH}} {_HEADER[3]:<{_PROGRESS_WIDTH}} "
        f"{_HEADER[4]:>6} {_HEADER[5]:>6}"
    ]
    states = sorted(collector.jobs.values(),
                    key=lambda s: (s.index if s.index >= 0 else 1 << 30, s.key))
    for state in states:
        age = state.heartbeat_age_s(now)
        status = state.status
        if (not state.done and stall_after_s is not None
                and age > stall_after_s):
            status = "STALLED?"
        hb = "-" if state.done else format_age(age)
        lines.append(
            f"{_clip(state.key, _KEY_WIDTH):<{_KEY_WIDTH}} "
            f"{_clip(status, 8):<8} "
            f"{_clip(state.stage or '-', _STAGE_WIDTH):<{_STAGE_WIDTH}} "
            f"{_clip(progress_summary(state), _PROGRESS_WIDTH):<{_PROGRESS_WIDTH}} "
            f"{format_rss(state.rss_kb):>6} {hb:>6}"
        )
    done = sum(1 for s in collector.jobs.values() if s.done)
    lines.append(f"[{done}/{len(collector.jobs)} done, "
                 f"{collector.dropped_events()} events dropped]")
    return lines


class LiveDisplay:
    """Owns the terminal side of ``--live``.

    On a TTY each refresh repaints over the previous frame (cursor-up
    + clear-line, supported by every terminal the CLI targets).  On a
    non-TTY stream frames are plain text and the refresh interval is
    floored at `NON_TTY_MIN_INTERVAL_S` so CI logs stay readable.
    """

    NON_TTY_MIN_INTERVAL_S = 2.0

    def __init__(self, stream=None, interval_s: float = 0.25,
                 stall_after_s: Optional[float] = None) -> None:
        self._stream = sys.stderr if stream is None else stream
        self._isatty = bool(getattr(self._stream, "isatty", lambda: False)())
        self.interval_s = interval_s
        if not self._isatty:
            self.interval_s = max(interval_s, self.NON_TTY_MIN_INTERVAL_S)
        self.stall_after_s = stall_after_s
        self._last_render = 0.0
        self._last_height = 0

    def tick(self, collector: TelemetryCollector, force: bool = False) -> bool:
        """Refresh if the interval elapsed; returns whether it drew."""
        now = time.monotonic()
        if not force and now - self._last_render < self.interval_s:
            return False
        self._last_render = now
        lines = render_rows(collector, stall_after_s=self.stall_after_s,
                            now=now)
        out = self._stream
        if self._isatty and self._last_height:
            out.write(f"\x1b[{self._last_height}F")  # to frame top
        for line in lines:
            if self._isatty:
                out.write("\x1b[2K")  # clear stale wider content
            out.write(line + "\n")
        out.flush()
        self._last_height = len(lines)
        return True

    def close(self, collector: TelemetryCollector) -> None:
        """Draw the final frame (always) and release the region."""
        self.tick(collector, force=True)
