"""Metric primitives: counters, gauges, histograms.

The types are deliberately tiny — a production exporter (Prometheus,
statsd) would wrap these, but the CAD flow only needs in-process
aggregation plus a JSON-friendly `snapshot()` per metric.  Instances
are usually created through a `repro.obs.registry.MetricsRegistry`
so exporters can enumerate them.
"""

from __future__ import annotations

import bisect
import contextlib
import math
import time
from typing import Dict, Iterator, List, Optional, Tuple

#: Shared histogram bucket upper bounds: 0 plus powers of two covering
#: ~1 ns .. ~8e9 (seconds, counts, bytes alike).  Fixed bounds make
#: per-shard bucket vectors mergeable by plain addition, which is how
#: `repro.obs.shards` recovers approximate percentiles for a batch
#: without shipping raw observations across the process boundary.
BUCKET_BOUNDS: Tuple[float, ...] = tuple([0.0] + [2.0 ** e
                                                  for e in range(-30, 34)])


class Counter:
    """Monotonically increasing count (events, nets routed, retries)."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value (current pres_fac, live overuse count)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value = (self.value or 0.0) + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Distribution of observations (per-net route times, deltas).

    Keeps raw observations — flow-scale cardinalities (nets,
    iterations) are small enough that exact percentiles beat bucketed
    approximations.
    """

    kind = "histogram"
    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @contextlib.contextmanager
    def time(self) -> Iterator[None]:
        """Observe the wall time of a ``with`` block, in seconds."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return math.fsum(self._values)

    @property
    def mean(self) -> Optional[float]:
        return self.sum / len(self._values) if self._values else None

    @property
    def min(self) -> Optional[float]:
        return min(self._values) if self._values else None

    @property
    def max(self) -> Optional[float]:
        return max(self._values) if self._values else None

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile, p in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._values:
            return None
        ordered = sorted(self._values)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def buckets(self) -> List[List[object]]:
        """Non-empty ``[upper_bound, count]`` pairs over `BUCKET_BOUNDS`.

        A value lands in the first bucket whose bound is >= the value;
        anything beyond the largest bound goes to an overflow bucket
        whose upper bound is encoded as None.  Only occupied buckets
        are emitted, so the snapshot stays small for the typical
        tightly-clustered flow distribution.
        """
        counts: Dict[int, int] = {}
        for value in self._values:
            index = bisect.bisect_left(BUCKET_BOUNDS, value)
            counts[index] = counts.get(index, 0) + 1
        n = len(BUCKET_BOUNDS)
        return [[BUCKET_BOUNDS[i] if i < n else None, counts[i]]
                for i in sorted(counts)]

    def snapshot(self) -> Dict[str, object]:
        snap: Dict[str, object] = {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }
        if self._values:
            snap["buckets"] = self.buckets()
        return snap
