"""Benchmark circuit substrate: LUT netlists, BLIF I/O, generators.

Provides the mapped K-LUT circuits the evaluation flow consumes: the
`Netlist` data structure, a BLIF subset reader/writer, a seeded
synthetic circuit generator, and named suite configurations matching
the paper's MCNC and Altera benchmark sets.
"""

from .core import Block, BlockType, Netlist
from .blif import read_blif, roundtrip_equal, write_blif
from .generate import GeneratorParams, generate
from .gates import Gate, GateNetlist, GateOp, random_gate_circuit
from .techmap import enumerate_cuts, map_to_luts, mapping_stats
from .simulate import check_equivalence, evaluate_netlist
from .suites import (
    ALTERA4_PARAMS,
    DEFAULT_SCALE,
    MCNC20_PARAMS,
    SUITES,
    load_circuit,
    load_suite,
    suite,
)

__all__ = [
    "ALTERA4_PARAMS",
    "Block",
    "BlockType",
    "DEFAULT_SCALE",
    "Gate",
    "GateNetlist",
    "GateOp",
    "GeneratorParams",
    "MCNC20_PARAMS",
    "Netlist",
    "SUITES",
    "check_equivalence",
    "enumerate_cuts",
    "evaluate_netlist",
    "generate",
    "map_to_luts",
    "mapping_stats",
    "random_gate_circuit",
    "load_circuit",
    "load_suite",
    "read_blif",
    "roundtrip_equal",
    "suite",
    "write_blif",
]
