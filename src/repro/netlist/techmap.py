"""Technology mapping: gate netlists -> K-LUT netlists.

Classic cut-based LUT mapping (the ABC/Chortle family):

1. enumerate K-feasible cuts per gate (merge fanin cuts, prune
   dominated supersets, keep the ``max_cuts`` best);
2. label each gate with its optimal mapped depth (min over cuts of
   1 + max leaf depth);
3. cover the network from the outputs with depth-optimal cuts,
   breaking ties on cut size (area);
4. derive each chosen LUT's truth table by simulating its cone, so the
   mapped netlist is functionally checkable against the source.

The result is a `repro.netlist.core.Netlist` ready for the pack/place/
route flow — making the library self-contained from gate level.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .core import Netlist
from .gates import GateNetlist

Cut = FrozenSet[str]


def _prune(cuts: List[Cut], max_cuts: int, depth_of: Dict[Cut, int]) -> List[Cut]:
    """Remove dominated cuts (supersets of another cut) and cap count."""
    kept: List[Cut] = []
    for cut in sorted(cuts, key=len):
        if any(other <= cut and other != cut for other in kept):
            continue
        kept.append(cut)
    kept.sort(key=lambda c: (depth_of[c], len(c), sorted(c)))
    return kept[:max_cuts]


def enumerate_cuts(
    netlist: GateNetlist, k: int, max_cuts: int = 8
) -> Tuple[Dict[str, List[Cut]], Dict[str, int]]:
    """K-feasible cuts and optimal mapped depth ("arrival") per signal.

    Leaves (PIs and FF outputs) have depth 0 and the trivial cut.
    """
    cuts: Dict[str, List[Cut]] = {}
    arrival: Dict[str, int] = {}
    for leaf in list(netlist.inputs) + list(netlist.ffs):
        cuts[leaf] = [frozenset({leaf})]
        arrival[leaf] = 0

    for name in netlist.topological_gates():
        gate = netlist.gates[name]
        fanin_cutsets: List[List[Cut]] = [cuts[src] for src in gate.inputs]
        merged: Set[Cut] = set()
        if len(fanin_cutsets) == 1:
            for c in fanin_cutsets[0]:
                if len(c) <= k:
                    merged.add(c)
        else:
            for c1 in fanin_cutsets[0]:
                for c2 in fanin_cutsets[1]:
                    union = c1 | c2
                    if len(union) <= k:
                        merged.add(union)
        depth_of: Dict[Cut, int] = {
            c: 1 + max(arrival[u] for u in c) for c in merged
        }
        best = _prune(list(merged), max_cuts, depth_of)
        if not best:
            # Fanin cone wider than K even at the immediate inputs can
            # not happen for 2-input gates with k >= 2, but guard it.
            raise ValueError(f"no K-feasible cut for gate {name!r} at K={k}")
        arrival[name] = depth_of[best[0]]
        # Parents may also cut *through* this gate: expose the trivial
        # cut alongside the merged ones.
        cuts[name] = _prune(
            best + [frozenset({name})],
            max_cuts + 1,
            {**depth_of, frozenset({name}): arrival[name]},
        )
    return cuts, arrival


def _cone_truth(netlist: GateNetlist, root: str, leaves: Sequence[str]) -> Tuple[int, ...]:
    """Truth table of ``root`` as a function of ``leaves`` (pin order),
    by exhaustive simulation of the cone between them."""
    leaf_set = set(leaves)
    # Collect the cone (gates strictly inside the cut).
    cone: List[str] = []
    seen: Set[str] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in seen or node in leaf_set:
            continue
        seen.add(node)
        cone.append(node)
        stack.extend(netlist.gates[node].inputs)
    order = [g for g in netlist.topological_gates() if g in seen]
    table: List[int] = []
    for minterm in range(2 ** len(leaves)):
        values: Dict[str, int] = {
            leaf: (minterm >> pin) & 1 for pin, leaf in enumerate(leaves)
        }
        for g in order:
            gate = netlist.gates[g]
            operands = [values[src] for src in gate.inputs]
            values[g] = gate.op.evaluate(*operands)
        table.append(values[root])
    return tuple(table)


def map_to_luts(
    netlist: GateNetlist, k: int = 4, max_cuts: int = 8
) -> Netlist:
    """Map a gate netlist to K-LUTs (depth-optimal, area tie-break).

    LUTs inherit the name of the gate they root at; FFs and I/Os keep
    their names, so signal-level comparisons against the source are
    direct.
    """
    if k < 2:
        raise ValueError(f"K must be >= 2, got {k}")
    netlist.validate()
    cuts, _arrival = enumerate_cuts(netlist, k, max_cuts)

    def best_cut(gate: str) -> Cut:
        non_trivial = [c for c in cuts[gate] if c != frozenset({gate})]
        return non_trivial[0]

    # Cover from the outputs backwards.
    needed: List[str] = []
    enqueued: Set[str] = set()

    def require(signal: str) -> None:
        if signal in netlist.gates and signal not in enqueued:
            enqueued.add(signal)
            needed.append(signal)

    for src in netlist.outputs.values():
        require(src)
    for src in netlist.ffs.values():
        require(src)
    chosen: Dict[str, Cut] = {}
    index = 0
    while index < len(needed):
        gate = needed[index]
        index += 1
        cut = best_cut(gate)
        chosen[gate] = cut
        for leaf in cut:
            require(leaf)

    # Emit the LUT netlist.
    mapped = Netlist(netlist.name, k=k)
    for pi in netlist.inputs:
        mapped.add_input(pi)
    # LUTs in topological order of the source network.
    for gate in netlist.topological_gates():
        if gate in chosen:
            leaves = sorted(chosen[gate])
            truth = _cone_truth(netlist, gate, leaves)
            mapped.add_lut(gate, leaves, truth=truth)
    for ff, src in netlist.ffs.items():
        mapped.add_ff(ff, src)
    for out, src in netlist.outputs.items():
        pad = out if out not in mapped.blocks else f"{out}__po"
        mapped.add_output(pad, src)
    mapped.validate()
    return mapped


def mapping_stats(gate_netlist: GateNetlist, mapped: Netlist) -> Dict[str, float]:
    """Mapper quality summary: gates absorbed per LUT, depths."""
    return {
        "gates": gate_netlist.num_gates,
        "luts": mapped.num_luts,
        "gates_per_lut": gate_netlist.num_gates / max(mapped.num_luts, 1),
        "lut_depth": mapped.logic_depth(),
    }
