"""Functional simulation of LUT netlists and equivalence checking.

LUTs mapped by `repro.netlist.techmap` carry truth tables, so a mapped
netlist can be *executed*: `evaluate_netlist` computes every signal for
an input assignment, and `check_equivalence` random-simulates a gate
netlist against its mapped LUT netlist (outputs and FF next-state must
agree on every vector) — the mapper's correctness oracle.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .core import BlockType, Netlist
from .gates import GateNetlist


def evaluate_netlist(
    netlist: Netlist,
    input_values: Dict[str, int],
    state: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """One combinational evaluation of a truth-table-carrying netlist.

    Args:
        input_values: PI name -> 0/1 (all PIs required).
        state: FF name -> current Q (default 0).

    Returns:
        Signal name -> value, including OUTPUT pads and, under
        ``"<ff>::next"`` keys, each FF's next-state (its D input).
    """
    values: Dict[str, int] = {}
    for pi in netlist.inputs:
        if pi.name not in input_values:
            raise ValueError(f"missing value for input {pi.name!r}")
        values[pi.name] = int(input_values[pi.name]) & 1
    for ff in netlist.ffs:
        values[ff.name] = int((state or {}).get(ff.name, 0)) & 1

    order = netlist.topological_luts()
    assert order is not None
    for name in order:
        block = netlist.blocks[name]
        if block.truth is None:
            raise ValueError(f"LUT {name!r} has no truth table; cannot simulate")
        index = 0
        for pin, src in enumerate(block.inputs):
            index |= (values[src] & 1) << pin
        values[name] = block.truth[index]
    for po in netlist.outputs:
        values[po.name] = values[po.inputs[0]]
    for ff in netlist.ffs:
        values[f"{ff.name}::next"] = values[ff.inputs[0]]
    return values


def check_equivalence(
    gate_netlist: GateNetlist,
    mapped: Netlist,
    vectors: int = 128,
    seed: int = 1,
) -> bool:
    """Random-simulation equivalence of a gate netlist and its mapping.

    Each vector drives random PI values and a random FF state through
    both circuits; every primary output and every FF next-state must
    agree.  Returns False on the first mismatch.
    """
    if vectors < 1:
        raise ValueError(f"vectors must be >= 1, got {vectors}")
    rng = np.random.default_rng(seed)
    pis = list(gate_netlist.inputs)
    ffs = list(gate_netlist.ffs)
    for _ in range(vectors):
        inputs = {pi: int(rng.integers(2)) for pi in pis}
        state = {ff: int(rng.integers(2)) for ff in ffs}
        golden = gate_netlist.evaluate(inputs, state)
        candidate = evaluate_netlist(mapped, inputs, state)
        # Compare at the observable boundary by *source signal* name
        # (mapped LUTs keep their root gate's name; output pad names
        # are not preserved through e.g. BLIF round-trips).
        for src in gate_netlist.outputs.values():
            if candidate.get(src) != golden[src]:
                return False
        for ff, src in gate_netlist.ffs.items():
            if candidate[f"{ff}::next"] != golden[src]:
                return False
    return True
