"""LUT-level netlist data structures.

The unit of the paper's evaluation flow: benchmark circuits mapped to
K-input LUTs plus flip-flops, with primary inputs/outputs.  This is
the representation VPR consumes (technology-mapped BLIF), and the one
our packing / placement / routing substrate operates on.

Conventions:

* every net is named by its driver: PIs and LUT/FF outputs drive nets
  of their own name;
* combinational structure must be acyclic once FF boundaries are cut
  (`Netlist.validate` checks this);
* a LUT has at most K inputs; truth tables are optional (architecture
  evaluation needs only topology and activity).
"""

from __future__ import annotations

import dataclasses
import enum
from collections import defaultdict, deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


class BlockType(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"
    LUT = "lut"
    FF = "ff"


@dataclasses.dataclass
class Block:
    """One netlist primitive.

    Attributes:
        name: Unique block name; also the name of the net it drives
            (OUTPUT blocks drive nothing).
        type: Primitive kind.
        inputs: Driver names of the nets feeding this block, in pin
            order.  INPUTs have none; OUTPUTs and FFs have exactly one.
        truth: Optional truth table for LUTs: entry ``truth[i]`` is the
            output for the input minterm whose bit k is
            ``(i >> k) & 1`` for pin k.  None = topology-only LUT
            (sufficient for architecture evaluation).
    """

    name: str
    type: BlockType
    inputs: List[str] = dataclasses.field(default_factory=list)
    truth: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.type is BlockType.INPUT and self.inputs:
            raise ValueError(f"input block {self.name!r} cannot have inputs")
        if self.type in (BlockType.OUTPUT, BlockType.FF) and len(self.inputs) != 1:
            raise ValueError(f"{self.type.value} block {self.name!r} needs exactly one input")
        if self.truth is not None:
            if self.type is not BlockType.LUT:
                raise ValueError(f"only LUTs carry truth tables ({self.name!r})")
            if len(self.truth) != 2 ** len(self.inputs):
                raise ValueError(
                    f"LUT {self.name!r}: truth table length {len(self.truth)} "
                    f"does not match {len(self.inputs)} inputs"
                )
            if any(bit not in (0, 1) for bit in self.truth):
                raise ValueError(f"LUT {self.name!r}: truth entries must be 0/1")


class Netlist:
    """A mapped K-LUT netlist.

    Args:
        name: Circuit name.
        k: LUT input count bound (paper: K = 4).
    """

    def __init__(self, name: str, k: int = 4) -> None:
        if k < 2:
            raise ValueError(f"K must be >= 2, got {k}")
        self.name = name
        self.k = k
        self.blocks: Dict[str, Block] = {}

    # -- construction ---------------------------------------------------

    def _add(self, block: Block) -> Block:
        if block.name in self.blocks:
            raise ValueError(f"duplicate block name {block.name!r}")
        self.blocks[block.name] = block
        return block

    def add_input(self, name: str) -> Block:
        return self._add(Block(name=name, type=BlockType.INPUT))

    def add_output(self, name: str, source: str) -> Block:
        return self._add(Block(name=name, type=BlockType.OUTPUT, inputs=[source]))

    def add_lut(
        self, name: str, inputs: Sequence[str], truth: Optional[Sequence[int]] = None
    ) -> Block:
        if not inputs:
            raise ValueError(f"LUT {name!r} needs at least one input")
        if len(inputs) > self.k:
            raise ValueError(f"LUT {name!r} has {len(inputs)} inputs, K = {self.k}")
        if len(set(inputs)) != len(inputs):
            raise ValueError(f"LUT {name!r} has duplicate inputs: {inputs}")
        table = tuple(truth) if truth is not None else None
        return self._add(
            Block(name=name, type=BlockType.LUT, inputs=list(inputs), truth=table)
        )

    def add_ff(self, name: str, source: str) -> Block:
        return self._add(Block(name=name, type=BlockType.FF, inputs=[source]))

    # -- queries ----------------------------------------------------------

    def blocks_of_type(self, block_type: BlockType) -> List[Block]:
        return [b for b in self.blocks.values() if b.type is block_type]

    @property
    def inputs(self) -> List[Block]:
        return self.blocks_of_type(BlockType.INPUT)

    @property
    def outputs(self) -> List[Block]:
        return self.blocks_of_type(BlockType.OUTPUT)

    @property
    def luts(self) -> List[Block]:
        return self.blocks_of_type(BlockType.LUT)

    @property
    def ffs(self) -> List[Block]:
        return self.blocks_of_type(BlockType.FF)

    @property
    def num_luts(self) -> int:
        return sum(1 for b in self.blocks.values() if b.type is BlockType.LUT)

    def drivers(self) -> Set[str]:
        """Names of all blocks that drive a net."""
        return {
            b.name for b in self.blocks.values() if b.type is not BlockType.OUTPUT
        }

    def fanout(self) -> Dict[str, List[Tuple[str, int]]]:
        """driver name -> [(sink block name, sink pin index), ...]."""
        result: Dict[str, List[Tuple[str, int]]] = defaultdict(list)
        for block in self.blocks.values():
            for pin, src in enumerate(block.inputs):
                result[src].append((block.name, pin))
        return dict(result)

    def nets(self) -> Dict[str, List[str]]:
        """driver name -> sink block names (nets with sinks only)."""
        return {src: [s for s, _pin in sinks] for src, sinks in self.fanout().items()}

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Raise ValueError on dangling references or combinational loops."""
        for block in self.blocks.values():
            for src in block.inputs:
                if src not in self.blocks:
                    raise ValueError(f"block {block.name!r} references unknown net {src!r}")
                if self.blocks[src].type is BlockType.OUTPUT:
                    raise ValueError(f"block {block.name!r} uses OUTPUT {src!r} as a source")
        # Combinational loop check: FFs and PIs are sources; traverse
        # LUT-to-LUT edges only.
        order = self.topological_luts()
        if order is None:
            raise ValueError(f"netlist {self.name!r} has a combinational loop")

    def topological_luts(self) -> Optional[List[str]]:
        """LUT names in topological order over combinational edges,
        or None if a combinational cycle exists."""
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = defaultdict(list)
        for block in self.blocks.values():
            if block.type is not BlockType.LUT:
                continue
            count = 0
            for src in block.inputs:
                src_block = self.blocks.get(src)
                if src_block is not None and src_block.type is BlockType.LUT:
                    count += 1
                    dependents[src].append(block.name)
            indegree[block.name] = count
        queue = deque(name for name, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while queue:
            name = queue.popleft()
            order.append(name)
            for dep in dependents.get(name, ()):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    queue.append(dep)
        if len(order) != len(indegree):
            return None
        return order

    # -- statistics ---------------------------------------------------------

    def logic_depth(self) -> int:
        """Longest LUT-to-LUT combinational chain (LUT count)."""
        order = self.topological_luts()
        if order is None:
            raise ValueError("cannot compute depth of a cyclic netlist")
        depth: Dict[str, int] = {}
        for name in order:
            block = self.blocks[name]
            best = 0
            for src in block.inputs:
                src_block = self.blocks.get(src)
                if src_block is not None and src_block.type is BlockType.LUT:
                    best = max(best, depth[src])
            depth[name] = best + 1
        return max(depth.values(), default=0)

    def stats(self) -> Dict[str, float]:
        nets = self.nets()
        fanouts = [len(sinks) for sinks in nets.values()]
        return {
            "luts": self.num_luts,
            "ffs": len(self.ffs),
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "nets": len(nets),
            "depth": self.logic_depth(),
            "avg_fanout": sum(fanouts) / len(fanouts) if fanouts else 0.0,
            "max_fanout": max(fanouts, default=0),
        }

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, k={self.k}, luts={self.num_luts}, "
            f"ffs={len(self.ffs)}, pis={len(self.inputs)}, pos={len(self.outputs)})"
        )
