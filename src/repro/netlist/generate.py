"""Seeded synthetic K-LUT benchmark generator.

Stands in for the MCNC [Yang 91] and Altera [Pistorius 07] circuits the
paper maps (we do not have the proprietary netlists offline).  The
generator builds levelized random LUT networks with the structural
statistics that drive FPGA architecture results:

* bounded fanin (K), fanin distribution biased toward K (mapped
  circuits mostly fill their LUTs),
* heavy-tailed fanout (mix of uniform and preferential attachment),
* geometric locality: a LUT draws most inputs from nearby earlier
  levels (Rent-like wiring locality),
* a configurable registered fraction (FF per LUT output) with FF
  outputs feeding anywhere (sequential loops through FFs are legal),
* deterministic for a given `GeneratorParams` (seeded numpy RNG).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List

import numpy as np

from .core import Netlist


@dataclasses.dataclass(frozen=True)
class GeneratorParams:
    """Parameters of one synthetic circuit.

    Attributes:
        name: Circuit name.
        num_luts: Number of K-LUTs.
        k: LUT input bound.
        num_inputs: Primary inputs; defaults (0) to ~ 2.2 sqrt(luts),
            the Rent-style pad count.
        num_outputs: Primary outputs; same default rule.
        depth: Combinational depth target (levels); defaults (0) to
            ~ 3 log2(luts)/2, typical of mapped control+datapath mixes.
        ff_fraction: Fraction of LUT outputs that are registered.
        locality: Geometric parameter in (0, 1]; larger = inputs come
            from closer levels (more local wiring).
        preferential: Probability a source is drawn
            fanout-preferentially (heavy fanout tail) vs uniformly.
        seed: RNG seed; two circuits with equal params are identical.
    """

    name: str
    num_luts: int
    k: int = 4
    num_inputs: int = 0
    num_outputs: int = 0
    depth: int = 0
    ff_fraction: float = 0.25
    locality: float = 0.45
    preferential: float = 0.35
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_luts < 1:
            raise ValueError(f"num_luts must be >= 1, got {self.num_luts}")
        if not 0.0 <= self.ff_fraction <= 1.0:
            raise ValueError(f"ff_fraction must be in [0, 1], got {self.ff_fraction}")
        if not 0.0 < self.locality <= 1.0:
            raise ValueError(f"locality must be in (0, 1], got {self.locality}")
        if not 0.0 <= self.preferential <= 1.0:
            raise ValueError(f"preferential must be in [0, 1], got {self.preferential}")

    @property
    def resolved_inputs(self) -> int:
        if self.num_inputs > 0:
            return self.num_inputs
        return max(4, int(round(2.2 * math.sqrt(self.num_luts))))

    @property
    def resolved_outputs(self) -> int:
        if self.num_outputs > 0:
            return self.num_outputs
        return max(2, int(round(1.8 * math.sqrt(self.num_luts))))

    @property
    def resolved_depth(self) -> int:
        if self.depth > 0:
            return self.depth
        return max(3, int(round(1.5 * math.log2(max(self.num_luts, 2)))))

    def scaled(self, factor: float, seed: "int | None" = None) -> "GeneratorParams":
        """Shrink (or grow) the circuit by ``factor`` keeping its shape.

        LUT/pad counts scale linearly (pads by sqrt to respect Rent);
        depth is preserved.  Used to run the paper's 10k-17k LUT
        circuits at pure-Python-friendly sizes (see DESIGN.md Sec. 6).
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return dataclasses.replace(
            self,
            num_luts=max(1, int(round(self.num_luts * factor))),
            num_inputs=max(4, int(round(self.resolved_inputs * math.sqrt(factor)))),
            num_outputs=max(2, int(round(self.resolved_outputs * math.sqrt(factor)))),
            depth=self.resolved_depth,
            seed=self.seed if seed is None else seed,
        )


def generate(params: GeneratorParams) -> Netlist:
    """Build the synthetic netlist for ``params`` (deterministic)."""
    rng = np.random.default_rng(params.seed)
    netlist = Netlist(params.name, k=params.k)

    n_pi = params.resolved_inputs
    n_po = params.resolved_outputs
    depth = min(params.resolved_depth, params.num_luts)

    pi_names = [f"pi{i}" for i in range(n_pi)]
    for name in pi_names:
        netlist.add_input(name)

    # Assign LUTs to levels: every level gets at least one, remainder
    # spread with a mild bulge in the middle (datapath-like).
    level_counts = [1] * depth
    remaining = params.num_luts - depth
    if remaining > 0:
        weights = np.array([1.0 + math.sin(math.pi * (i + 0.5) / depth) for i in range(depth)])
        extra = rng.multinomial(remaining, weights / weights.sum())
        level_counts = [c + int(e) for c, e in zip(level_counts, extra)]

    lut_level: Dict[str, int] = {}
    levels: List[List[str]] = [[] for _ in range(depth)]
    lut_names: List[str] = []
    counter = 0
    for level, count in enumerate(level_counts):
        for _ in range(count):
            name = f"n{counter}"
            counter += 1
            levels[level].append(name)
            lut_level[name] = level
            lut_names.append(name)

    # Register a fraction of LUT outputs.  FF outputs become global
    # sources usable at any level (they cross the clock boundary).
    n_ff = int(round(params.ff_fraction * params.num_luts))
    ff_of = rng.choice(params.num_luts, size=n_ff, replace=False) if n_ff else np.array([], int)
    ff_names = [f"{lut_names[i]}_reg" for i in ff_of]

    # Sources available to a LUT at level l: PIs, FF outputs, and LUTs
    # at levels < l.  Fanout counts track preferential attachment.
    fanout_count: Dict[str, int] = {name: 0 for name in pi_names}
    for ff in ff_names:
        fanout_count[ff] = 0

    sources_by_level: List[List[str]] = [[] for _ in range(depth + 1)]
    sources_by_level[0] = pi_names + ff_names

    def pick_sources(level: int, fanin: int) -> List[str]:
        chosen: List[str] = []
        attempts = 0
        while len(chosen) < fanin and attempts < 50 * fanin:
            attempts += 1
            # Geometric choice of source distance: distance 0 = the
            # immediately preceding level, larger = further back; the
            # PI/FF pool sits behind the last level.
            distance = min(int(rng.geometric(params.locality)) - 1, level)
            source_level = level - 1 - distance
            pool = sources_by_level[source_level + 1] if source_level >= 0 else sources_by_level[0]
            if not pool:
                pool = sources_by_level[0]
            if rng.random() < params.preferential and len(pool) > 1:
                weights = np.array([1.0 + fanout_count[s] for s in pool])
                src = pool[int(rng.choice(len(pool), p=weights / weights.sum()))]
            else:
                src = pool[int(rng.integers(len(pool)))]
            if src not in chosen:
                chosen.append(src)
        if not chosen:
            chosen.append(pi_names[int(rng.integers(len(pi_names)))])
        return chosen

    # Fanin distribution biased toward K (mapped LUTs are mostly full).
    fanin_choices = list(range(2, params.k + 1))
    fanin_weights = np.array([1.0] * (len(fanin_choices) - 1) + [2.5])
    fanin_weights = fanin_weights / fanin_weights.sum()

    for level in range(depth):
        for name in levels[level]:
            fanin = int(rng.choice(fanin_choices, p=fanin_weights)) if params.k > 2 else 2
            fanin = min(fanin, params.k)
            sources = pick_sources(level, fanin)
            netlist.add_lut(name, sources)
            for src in sources:
                fanout_count[src] += 1
            fanout_count[name] = 0
            sources_by_level[level + 1].append(name)

    for idx in ff_of:
        lut = lut_names[int(idx)]
        netlist.add_ff(f"{lut}_reg", source=lut)

    # Primary outputs: prefer deep LUTs and FFs; then guarantee every
    # driver has at least one sink by appending dangling drivers as POs.
    fanouts = netlist.fanout()
    candidates = [name for name in reversed(lut_names)] + ff_names
    po_sources: List[str] = []
    for name in candidates:
        if len(po_sources) >= n_po:
            break
        if name not in fanouts:
            po_sources.append(name)
    for name in candidates:
        if len(po_sources) >= n_po:
            break
        if name not in po_sources:
            po_sources.append(name)
    for i, src in enumerate(po_sources):
        netlist.add_output(f"po{i}", source=src)
    # Any remaining driverless-sink LUT/FF outputs become extra POs so
    # no logic is dangling (VPR prunes dangling logic; we keep it live).
    fanouts = netlist.fanout()
    extra = 0
    for name in lut_names + ff_names:
        if name not in fanouts:
            netlist.add_output(f"po_extra{extra}", source=name)
            extra += 1

    netlist.validate()
    return netlist
