"""Benchmark suites of the paper's evaluation (Sec. 3.4).

Two suites:

* **MCNC20** — the 20 largest MCNC circuits [Yang 91], the classic
  FPGA architecture benchmark set; the paper reports their geometric
  mean.  4-LUT counts below are the published post-mapping sizes.
* **ALTERA4** — the four large benchmark circuits (> 10K 4-LUTs) from
  [Pistorius 07] the paper reports individually, with the LUT counts
  printed in Fig. 12.

We do not have the proprietary netlists; each entry is a
`GeneratorParams` whose synthetic circuit matches the published LUT
count (and plausible pad counts / registered fractions for the circuit
class).  `suite(..., scale=...)` shrinks all circuits by a common
factor for pure-Python runtime — paper-reported *ratios* are evaluated
at matched workload (DESIGN.md Sec. 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .core import Netlist
from .generate import GeneratorParams, generate

#: The 20 largest MCNC circuits with published 4-LUT counts.
#: (counts per Betz/Rose VPR distribution; sequential circuits carry a
#: nonzero registered fraction.)
MCNC20_PARAMS: List[GeneratorParams] = [
    GeneratorParams("alu4", num_luts=1522, num_inputs=14, num_outputs=8, ff_fraction=0.0, seed=101),
    GeneratorParams("apex2", num_luts=1878, num_inputs=38, num_outputs=3, ff_fraction=0.0, seed=102),
    GeneratorParams("apex4", num_luts=1262, num_inputs=9, num_outputs=19, ff_fraction=0.0, seed=103),
    GeneratorParams("bigkey", num_luts=1707, num_inputs=229, num_outputs=197, ff_fraction=0.13, seed=104),
    GeneratorParams("clma", num_luts=8383, num_inputs=62, num_outputs=82, ff_fraction=0.004, seed=105),
    GeneratorParams("des", num_luts=1591, num_inputs=256, num_outputs=245, ff_fraction=0.0, seed=106),
    GeneratorParams("diffeq", num_luts=1497, num_inputs=64, num_outputs=39, ff_fraction=0.26, seed=107),
    GeneratorParams("dsip", num_luts=1370, num_inputs=229, num_outputs=197, ff_fraction=0.16, seed=108),
    GeneratorParams("elliptic", num_luts=3604, num_inputs=131, num_outputs=114, ff_fraction=0.31, seed=109),
    GeneratorParams("ex1010", num_luts=4598, num_inputs=10, num_outputs=10, ff_fraction=0.0, seed=110),
    GeneratorParams("ex5p", num_luts=1064, num_inputs=8, num_outputs=63, ff_fraction=0.0, seed=111),
    GeneratorParams("frisc", num_luts=3556, num_inputs=20, num_outputs=116, ff_fraction=0.25, seed=112),
    GeneratorParams("misex3", num_luts=1397, num_inputs=14, num_outputs=14, ff_fraction=0.0, seed=113),
    GeneratorParams("pdc", num_luts=4575, num_inputs=16, num_outputs=40, ff_fraction=0.0, seed=114),
    GeneratorParams("s298", num_luts=1931, num_inputs=4, num_outputs=6, ff_fraction=0.007, seed=115),
    GeneratorParams("s38417", num_luts=6406, num_inputs=29, num_outputs=106, ff_fraction=0.25, seed=116),
    GeneratorParams("s38584.1", num_luts=6447, num_inputs=39, num_outputs=304, ff_fraction=0.2, seed=117),
    GeneratorParams("seq", num_luts=1750, num_inputs=41, num_outputs=35, ff_fraction=0.0, seed=118),
    GeneratorParams("spla", num_luts=3690, num_inputs=16, num_outputs=46, ff_fraction=0.0, seed=119),
    GeneratorParams("tseng", num_luts=1047, num_inputs=52, num_outputs=122, ff_fraction=0.37, seed=120),
]

#: The four > 10K-LUT circuits the paper reports individually
#: (Fig. 12 legend), from the [Pistorius 07] Altera benchmark method.
ALTERA4_PARAMS: List[GeneratorParams] = [
    GeneratorParams("ava", num_luts=12254, ff_fraction=0.3, seed=201),
    GeneratorParams("oc_des_des3perf", num_luts=11742, ff_fraction=0.28, seed=202),
    GeneratorParams("sudoku_check", num_luts=17188, ff_fraction=0.2, seed=203),
    GeneratorParams("ucsb_152_tap_fir", num_luts=10199, ff_fraction=0.45, seed=204),
]

SUITES: Dict[str, List[GeneratorParams]] = {
    "mcnc20": MCNC20_PARAMS,
    "altera4": ALTERA4_PARAMS,
}

#: Default shrink factor for pure-Python P&R runs (DESIGN.md Sec. 6):
#: keeps relative circuit sizes while landing the largest circuits
#: near ~600 LUTs (routable in seconds each).
DEFAULT_SCALE = 0.05


def suite(name: str, scale: Optional[float] = None) -> List[GeneratorParams]:
    """Parameter list for a named suite, optionally size-scaled."""
    if name not in SUITES:
        raise KeyError(f"unknown suite {name!r}; available: {sorted(SUITES)}")
    params = SUITES[name]
    if scale is None or scale == 1.0:
        return list(params)
    return [p.scaled(scale) for p in params]


def load_suite(name: str, scale: Optional[float] = DEFAULT_SCALE) -> List[Netlist]:
    """Generate all circuits of a suite (scaled by default)."""
    return [generate(p) for p in suite(name, scale)]


def load_circuit(circuit: str, scale: Optional[float] = DEFAULT_SCALE) -> Netlist:
    """Generate one named circuit from any suite."""
    for params in MCNC20_PARAMS + ALTERA4_PARAMS:
        if params.name == circuit:
            if scale is not None and scale != 1.0:
                params = params.scaled(scale)
            return generate(params)
    raise KeyError(f"unknown circuit {circuit!r}")
