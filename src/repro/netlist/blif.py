"""BLIF subset reader/writer.

VPR consumes technology-mapped BLIF [Yang 91]; we support the subset
that mapped K-LUT circuits use: ``.model``, ``.inputs``, ``.outputs``,
``.names`` (LUTs) and ``.latch`` (FFs).  Truth-table cover lines are
preserved on write (a default cover is emitted when absent) and
ignored on read beyond pin ordering, since architecture evaluation
needs topology only.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, TextIO

from .core import Block, BlockType, Netlist


def _tokens(lines: Iterable[str]) -> List[List[str]]:
    """Split BLIF into logical statements, honouring ``\\`` continuations
    and ``#`` comments."""
    statements: List[List[str]] = []
    pending = ""
    for raw in lines:
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        pending += line
        statements.append(pending.split())
        pending = ""
    if pending.strip():
        statements.append(pending.split())
    return statements


def read_blif(stream: TextIO, k: int = 4) -> Netlist:
    """Parse a mapped BLIF file into a `Netlist`.

    Signals that appear as fanins but are driven by no ``.names`` /
    ``.latch`` / ``.inputs`` declaration raise ValueError.  Output pads
    are modelled as OUTPUT blocks named ``<net>__po`` when the output
    net name collides with its driver (the common case).
    """
    statements = _tokens(stream)
    name = "blif"
    inputs: List[str] = []
    outputs: List[str] = []
    luts: List[tuple] = []  # (output, [inputs], [cover lines])
    latches: List[tuple] = []  # (input, output)

    i = 0
    while i < len(statements):
        stmt = statements[i]
        key = stmt[0]
        if key == ".model":
            if len(stmt) > 1:
                name = stmt[1]
        elif key == ".inputs":
            inputs.extend(stmt[1:])
        elif key == ".outputs":
            outputs.extend(stmt[1:])
        elif key == ".names":
            signals = stmt[1:]
            if not signals:
                raise ValueError(".names with no signals")
            lut_inputs, lut_output = signals[:-1], signals[-1]
            cover: List[str] = []
            j = i + 1
            while j < len(statements) and not statements[j][0].startswith("."):
                cover.append(" ".join(statements[j]))
                j += 1
            luts.append((lut_output, lut_inputs, cover))
            i = j - 1
        elif key == ".latch":
            if len(stmt) < 3:
                raise ValueError(f"malformed .latch: {stmt}")
            latches.append((stmt[1], stmt[2]))
        elif key == ".end":
            break
        elif key in (".clock",):
            pass  # single implicit clock domain
        else:
            raise ValueError(f"unsupported BLIF construct {key!r}")
        i += 1

    netlist = Netlist(name, k=k)
    driven = set(inputs)
    for out, _ins, _cover in luts:
        if out in driven:
            raise ValueError(f"net {out!r} driven twice")
        driven.add(out)
    for _inp, out in latches:
        if out in driven:
            raise ValueError(f"net {out!r} driven twice")
        driven.add(out)
    for pi in inputs:
        netlist.add_input(pi)
    for out, ins, _cover in luts:
        # Constant generators (.names with no inputs) become 0-input
        # LUTs; model them as inputs for architecture purposes.
        if not ins:
            netlist.add_input(out)
    # Second pass: create LUTs and latches now that all drivers are known.
    for out, ins, cover in luts:
        if ins:
            netlist.add_lut(out, ins, truth=_cover_to_truth(ins, cover))
    for inp, out in latches:
        netlist.add_ff(out, inp)
    for po in outputs:
        # A net may legally be listed in .outputs more than once (two
        # pads on one driver); uniquify the synthesised pad names.
        pad = po if po not in netlist.blocks else f"{po}__po"
        serial = 2
        while pad in netlist.blocks:
            pad = f"{po}__po{serial}"
            serial += 1
        netlist.add_output(pad, source=po)
    netlist.validate()
    return netlist


def _cover_to_truth(inputs: List[str], cover: List[str]):
    """Parse an ON-set cover into a truth table, or None when the
    cover uses OFF-set semantics (output column '0')."""
    n = len(inputs)
    truth = [0] * (2**n)
    for line in cover:
        parts = line.split()
        if len(parts) != 2 or len(parts[0]) != n:
            return None
        pattern, value = parts
        if value != "1":
            return None  # OFF-set cover: keep topology-only
        # Expand don't-cares; BLIF column j corresponds to pin j.
        free = [j for j, ch in enumerate(pattern) if ch == "-"]
        if any(ch not in "01-" for ch in pattern):
            return None
        base = 0
        for j, ch in enumerate(pattern):
            if ch == "1":
                base |= 1 << j
        for mask in range(2 ** len(free)):
            index = base
            for bit, j in enumerate(free):
                if mask >> bit & 1:
                    index |= 1 << j
            truth[index] = 1
    return tuple(truth)


def _truth_to_cover(truth) -> List[str]:
    """ON-set cover lines for a truth table (one line per minterm)."""
    n = len(truth).bit_length() - 1
    lines = []
    for minterm, bit in enumerate(truth):
        if bit:
            pattern = "".join(str(minterm >> j & 1) for j in range(n))
            lines.append(f"{pattern} 1")
    return lines


def write_blif(netlist: Netlist, stream: TextIO) -> None:
    """Emit the netlist as mapped BLIF.

    LUTs with truth tables write their real ON-set cover; topology-only
    LUTs write a placeholder AND cover.
    """
    stream.write(f".model {netlist.name}\n")
    pis = " ".join(b.name for b in netlist.inputs)
    stream.write(f".inputs {pis}\n")
    pos = " ".join(b.inputs[0] for b in netlist.outputs)
    stream.write(f".outputs {pos}\n")
    for ff in netlist.ffs:
        stream.write(f".latch {ff.inputs[0]} {ff.name} re clk 0\n")
    for lut in netlist.luts:
        stream.write(f".names {' '.join(lut.inputs)} {lut.name}\n")
        if lut.truth is not None:
            for line in _truth_to_cover(lut.truth):
                stream.write(line + "\n")
        else:
            # Placeholder cover: AND of all inputs (topology carrier).
            stream.write("1" * len(lut.inputs) + " 1\n")
    stream.write(".end\n")


def roundtrip_equal(a: Netlist, b: Netlist) -> bool:
    """Structural equality: same blocks, types and connections.

    Output blocks compare by their driven signal rather than by name:
    ``.outputs`` records only the driver, so a writer cannot preserve
    output block names and ``read_blif`` synthesises fresh ones.
    Everything else (PIs, LUTs, FFs) must match name-for-name.
    """
    if sorted(blk.inputs[0] for blk in a.outputs) != sorted(
        blk.inputs[0] for blk in b.outputs
    ):
        return False
    a_rest = {n: blk for n, blk in a.blocks.items()
              if blk.type is not BlockType.OUTPUT}
    b_rest = {n: blk for n, blk in b.blocks.items()
              if blk.type is not BlockType.OUTPUT}
    if set(a_rest) != set(b_rest):
        return False
    return all(
        block.type is b_rest[name].type and block.inputs == b_rest[name].inputs
        for name, block in a_rest.items()
    )
