"""Gate-level netlists (the technology mapper's input).

A `GateNetlist` is a DAG of primitive logic gates — the form a
synthesis front-end hands to technology mapping.  Gates take one or
two inputs (wider fanin is built by trees); FFs and primary I/Os
mirror the LUT-netlist conventions so mapped circuits drop straight
into the existing flow.

Includes functional evaluation (for equivalence checking against the
mapped LUT netlist) and a seeded random gate-circuit generator.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import deque
from typing import Dict, List, Optional, Sequence

import numpy as np


class GateOp(enum.Enum):
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    NOT = "not"
    BUF = "buf"

    @property
    def arity(self) -> int:
        return 1 if self in (GateOp.NOT, GateOp.BUF) else 2

    def evaluate(self, a: int, b: int = 0) -> int:
        if self is GateOp.AND:
            return a & b
        if self is GateOp.OR:
            return a | b
        if self is GateOp.XOR:
            return a ^ b
        if self is GateOp.NAND:
            return 1 - (a & b)
        if self is GateOp.NOR:
            return 1 - (a | b)
        if self is GateOp.XNOR:
            return 1 - (a ^ b)
        if self is GateOp.NOT:
            return 1 - a
        return a  # BUF


@dataclasses.dataclass
class Gate:
    """One logic gate: ``name = op(inputs)``."""

    name: str
    op: GateOp
    inputs: List[str]

    def __post_init__(self) -> None:
        if len(self.inputs) != self.op.arity:
            raise ValueError(
                f"gate {self.name!r}: {self.op.value} takes {self.op.arity} "
                f"inputs, got {len(self.inputs)}"
            )


class GateNetlist:
    """A combinational/sequential gate-level circuit."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: List[str] = []
        self.outputs: Dict[str, str] = {}  # output pad name -> source signal
        self.gates: Dict[str, Gate] = {}
        self.ffs: Dict[str, str] = {}  # ff name -> D source signal

    # -- construction ---------------------------------------------------

    def _check_new(self, name: str) -> None:
        if name in self.gates or name in self.ffs or name in self.inputs:
            raise ValueError(f"duplicate signal {name!r}")

    def add_input(self, name: str) -> None:
        self._check_new(name)
        self.inputs.append(name)

    def add_gate(self, name: str, op: GateOp, inputs: Sequence[str]) -> None:
        self._check_new(name)
        self.gates[name] = Gate(name=name, op=op, inputs=list(inputs))

    def add_ff(self, name: str, source: str) -> None:
        self._check_new(name)
        self.ffs[name] = source

    def add_output(self, name: str, source: str) -> None:
        if name in self.outputs:
            raise ValueError(f"duplicate output {name!r}")
        self.outputs[name] = source

    # -- queries ----------------------------------------------------------

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def signals(self) -> List[str]:
        return self.inputs + list(self.ffs) + list(self.gates)

    def topological_gates(self) -> List[str]:
        """Gate names in topological order (FF boundaries cut)."""
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {}
        for gate in self.gates.values():
            count = 0
            for src in gate.inputs:
                if src in self.gates:
                    count += 1
                    dependents.setdefault(src, []).append(gate.name)
            indegree[gate.name] = count
        queue = deque(n for n, d in indegree.items() if d == 0)
        order: List[str] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for dep in dependents.get(node, ()):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    queue.append(dep)
        if len(order) != len(self.gates):
            raise ValueError(f"gate netlist {self.name!r} has a combinational loop")
        return order

    def validate(self) -> None:
        known = set(self.signals())
        for gate in self.gates.values():
            for src in gate.inputs:
                if src not in known:
                    raise ValueError(f"gate {gate.name!r} references unknown {src!r}")
        for ff, src in self.ffs.items():
            if src not in known:
                raise ValueError(f"FF {ff!r} references unknown {src!r}")
        for out, src in self.outputs.items():
            if src not in known:
                raise ValueError(f"output {out!r} references unknown {src!r}")
        self.topological_gates()

    # -- functional evaluation -----------------------------------------------

    def evaluate(
        self,
        input_values: Dict[str, int],
        state: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        """One combinational evaluation.

        Args:
            input_values: PI name -> 0/1.
            state: FF name -> current Q value (default all 0).

        Returns:
            Signal name -> value for every signal (gates, outputs).
        """
        values: Dict[str, int] = {}
        for pi in self.inputs:
            if pi not in input_values:
                raise ValueError(f"missing value for input {pi!r}")
            values[pi] = int(input_values[pi]) & 1
        for ff in self.ffs:
            values[ff] = int((state or {}).get(ff, 0)) & 1
        for name in self.topological_gates():
            gate = self.gates[name]
            operands = [values[src] for src in gate.inputs]
            values[name] = gate.op.evaluate(*operands)
        for out, src in self.outputs.items():
            values[out] = values[src]
        return values

    def __repr__(self) -> str:
        return (
            f"GateNetlist({self.name!r}, gates={self.num_gates}, "
            f"ffs={len(self.ffs)}, pis={len(self.inputs)}, pos={len(self.outputs)})"
        )


def random_gate_circuit(
    name: str,
    num_gates: int,
    num_inputs: int = 8,
    num_outputs: int = 4,
    ff_fraction: float = 0.0,
    seed: int = 1,
) -> GateNetlist:
    """Seeded random gate DAG for mapper tests and demos."""
    if num_gates < 1 or num_inputs < 1 or num_outputs < 1:
        raise ValueError("counts must be positive")
    if not 0.0 <= ff_fraction <= 1.0:
        raise ValueError("ff_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    netlist = GateNetlist(name)
    for i in range(num_inputs):
        netlist.add_input(f"pi{i}")
    ops = [GateOp.AND, GateOp.OR, GateOp.XOR, GateOp.NAND, GateOp.NOR, GateOp.NOT]
    pool = [f"pi{i}" for i in range(num_inputs)]
    n_ff = int(round(ff_fraction * num_gates))
    ff_names = [f"r{i}" for i in range(n_ff)]
    pool += ff_names  # FF outputs usable before their D is defined
    for i in range(num_gates):
        op = ops[int(rng.integers(len(ops)))]
        if len(set(pool)) < op.arity:
            # Not enough distinct signals for a binary gate (1-PI
            # circuits before any gate exists): degrade to NOT rather
            # than spinning forever looking for a second fanin.
            op = GateOp.NOT
        fanin = op.arity
        sources = []
        while len(sources) < fanin:
            candidate = pool[int(rng.integers(len(pool)))]
            if candidate not in sources:
                sources.append(candidate)
        netlist.add_gate(f"g{i}", op, sources)
        pool.append(f"g{i}")
    gate_names = [f"g{i}" for i in range(num_gates)]
    for i, ff in enumerate(ff_names):
        netlist.add_ff(ff, gate_names[int(rng.integers(len(gate_names)))])
    for i in range(num_outputs):
        netlist.add_output(f"po{i}", gate_names[-(1 + i % len(gate_names))])
    netlist.validate()
    return netlist
