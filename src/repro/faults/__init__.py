"""Fault injection, detection, and self-repair for the NEM fabric.

The detect -> avoid -> repair loop the paper's fragile relays demand:

* `FabricDefectMap` / `FaultCampaign` — seeded fault injection on
  `FabricIR` routing switches (uniform rates, Vpi/Vpo variation
  tails, Weibull aging), bit-reproducible from (seed, fabric key);
* `run_fabric_bist` — fabric-wide two-pattern self-test locating the
  same faults from terminal behaviour;
* `repair_routing` — incremental self-repair with a graceful
  degradation ladder (reroute victims only -> full reroute -> widen);
* `run_defect_sweep` — routability-vs-defect-rate yield curves with
  verified nested fault-set chains per campaign;
* `simulate_mission` — epoch-stepped lifetime simulation composing
  all of the above under pluggable repair policies, producing
  per-policy degradation curves and time-to-first-unrepairable.
"""

from .bist import run_fabric_bist
from .campaign import (
    CAMPAIGN_MODES,
    FaultCampaign,
    site_actuations,
    switch_sites,
)
from .defects import (
    FabricDefectMap,
    canonical_digest,
    chain_is_nested,
    defect_maps_nested,
    empty_defect_map,
    fabric_key_of,
    resolve_defects,
)
from .evaluate import (
    CampaignOutcome,
    DefectSweep,
    FaultSetChain,
    routing_digest,
    run_defect_sweep,
)
from .mission import (
    MISSION_POLICIES,
    EpochRecord,
    MissionResult,
    MissionSpec,
    MissionTrajectory,
    RepairPolicy,
    aggregate_degradation,
    policy_name_valid,
    resolve_policy,
    run_mission,
    simulate_mission,
)
from .repair import (
    REPAIR_STAGES,
    RepairAttempt,
    RepairResult,
    find_victims,
    repair_routing,
)

__all__ = [
    "CAMPAIGN_MODES",
    "CampaignOutcome",
    "DefectSweep",
    "EpochRecord",
    "FabricDefectMap",
    "FaultCampaign",
    "FaultSetChain",
    "MISSION_POLICIES",
    "MissionResult",
    "MissionSpec",
    "MissionTrajectory",
    "REPAIR_STAGES",
    "RepairAttempt",
    "RepairPolicy",
    "RepairResult",
    "aggregate_degradation",
    "canonical_digest",
    "chain_is_nested",
    "defect_maps_nested",
    "empty_defect_map",
    "fabric_key_of",
    "find_victims",
    "policy_name_valid",
    "repair_routing",
    "resolve_defects",
    "resolve_policy",
    "routing_digest",
    "run_defect_sweep",
    "run_fabric_bist",
    "run_mission",
    "simulate_mission",
    "site_actuations",
    "switch_sites",
]
