"""Fault injection, detection, and self-repair for the NEM fabric.

The detect -> avoid -> repair loop the paper's fragile relays demand:

* `FabricDefectMap` / `FaultCampaign` — seeded fault injection on
  `FabricIR` routing switches (uniform rates, Vpi/Vpo variation
  tails, Weibull aging), bit-reproducible from (seed, fabric key);
* `run_fabric_bist` — fabric-wide two-pattern self-test locating the
  same faults from terminal behaviour;
* `repair_routing` — incremental self-repair with a graceful
  degradation ladder (reroute victims only -> full reroute -> widen);
* `run_defect_sweep` — routability-vs-defect-rate yield curves.
"""

from .bist import run_fabric_bist
from .campaign import CAMPAIGN_MODES, FaultCampaign, switch_sites
from .defects import (
    FabricDefectMap,
    canonical_digest,
    empty_defect_map,
    fabric_key_of,
    resolve_defects,
)
from .evaluate import (
    CampaignOutcome,
    DefectSweep,
    routing_digest,
    run_defect_sweep,
)
from .repair import (
    REPAIR_STAGES,
    RepairAttempt,
    RepairResult,
    find_victims,
    repair_routing,
)

__all__ = [
    "CAMPAIGN_MODES",
    "CampaignOutcome",
    "DefectSweep",
    "FabricDefectMap",
    "FaultCampaign",
    "REPAIR_STAGES",
    "RepairAttempt",
    "RepairResult",
    "canonical_digest",
    "empty_defect_map",
    "fabric_key_of",
    "find_victims",
    "repair_routing",
    "resolve_defects",
    "routing_digest",
    "run_defect_sweep",
    "run_fabric_bist",
    "switch_sites",
]
