"""Incremental self-repair of routed designs on degraded fabrics.

Given a legally routed design and a `FabricDefectMap` that appeared
*after* routing (aging, BIST after a field failure), `repair_routing`
restores legality with the least possible disturbance, descending a
graceful-degradation ladder:

* **clean** — no routed net touches a faulty resource: nothing to do,
  the original routing (and bitstream) stands.
* **incremental** — rip up only the victim nets and negotiate them
  back against the blocked resources while every healthy net's tree
  stays *pinned* (`PathFinderRouter.route(fixed_trees=...)`).  Healthy
  trees are returned by identity — byte-identical, so the fabric tiles
  they program are not even reprogrammed.
* **full** — victims could not fit around the pinned nets: reroute the
  whole design from scratch on the same fabric, avoiding the faults.
* **widened** — the design no longer fits this channel width at all:
  retry at W + step, W + 2*step, ... (each width gets its defect map
  re-sampled from the campaign, because node ids — and the physical
  relay population — change with the fabric).

Every stage runs under a ``repair.*`` span and feeds the metrics
registry (``repair.runs`` / ``repair.nets_ripped`` / ``repair.stage``
/ ``repair.failures``) so `repro report` and `repro diff` surface
degradation events.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..fabric import FabricIR, get_fabric
from ..obs import get_logger, get_publisher, get_registry, get_tracer, kv
from ..vpr.place import Placement
from ..vpr.route import (
    PathFinderRouter,
    RouteTree,
    RoutingResult,
    build_route_nets,
)
from .defects import FabricDefectMap, resolve_defects

_log = get_logger("faults.repair")

#: Ladder stages in degradation order (index == severity).
REPAIR_STAGES = ("clean", "incremental", "full", "widened", "failed")


def find_victims(
    routing: RoutingResult, defects: FabricDefectMap
) -> List[str]:
    """Names of nets whose route uses a faulty resource (sorted).

    A net is a victim when its tree contains a blocked node (dead wire
    or a wire bridged by a stuck-closed relay) or crosses a blocked
    directed edge (a stuck-open relay it needs conducting).
    """
    blocked_nodes = defects.blocked_nodes()
    blocked_edges = defects.blocked_edges()
    victims = []
    for name, tree in routing.trees.items():
        if blocked_nodes and any(n in blocked_nodes for n in tree.nodes):
            victims.append(name)
            continue
        if blocked_edges and any(
            parent >= 0 and (parent, node) in blocked_edges
            for node, parent in tree.parent.items()
        ):
            victims.append(name)
    return sorted(victims)


@dataclasses.dataclass(frozen=True)
class RepairAttempt:
    """One rung of the ladder, as tried."""

    stage: str
    channel_width: int
    success: bool
    nets_rerouted: int
    iterations: int


@dataclasses.dataclass
class RepairResult:
    """Outcome of `repair_routing`.

    Attributes:
        stage: The rung that succeeded (or ``failed``).
        stage_index: Numeric severity (position in `REPAIR_STAGES`).
        success: Whether a legal routing exists at the end.
        routing: The repaired routing (original on ``clean``; merged
            healthy + rerouted trees on ``incremental``; a fresh full
            route otherwise).  On failure: the last attempt's partial.
        graph: The fabric the final routing lives on (changes only at
            the ``widened`` stage).
        channel_width: Final channel width.
        defects: The defect map the final routing avoids (re-sampled
            when the stage widened the fabric).
        victim_nets: Nets the defect map displaced from the original.
        nets_ripped: Total nets ripped up across all attempted stages.
        attempts: Ladder rungs in the order tried.
    """

    stage: str
    success: bool
    routing: RoutingResult
    graph: FabricIR
    channel_width: int
    defects: FabricDefectMap
    victim_nets: List[str]
    nets_ripped: int
    attempts: List[RepairAttempt]

    @property
    def stage_index(self) -> int:
        return REPAIR_STAGES.index(self.stage)


def _merged_wirelength(ir: FabricIR, trees: Dict[str, RouteTree]) -> int:
    wire_spans = ir.wire_spans
    return sum(wire_spans[n] for tree in trees.values() for n in tree.nodes)


def repair_routing(
    placement: Placement,
    routing: RoutingResult,
    defects: FabricDefectMap,
    graph: Optional[FabricIR] = None,
    campaign: Optional[object] = None,
    max_widen: int = 3,
    widen_step: int = 2,
    route_kernel: Optional[str] = None,
    **router_kwargs,
) -> RepairResult:
    """Restore routing legality against ``defects`` (see module doc).

    Args:
        placement: The placed design (needed to rebuild nets and, on
            the widened rung, fresh fabrics).
        routing: The previously legal routing to preserve.
        defects: Fault state of the *current* fabric.
        graph: That fabric; defaults to the cache lookup for the
            placement's parameters (must match ``defects``).
        campaign: Optional defect provider (`FaultCampaign`, callable,
            or anything `resolve_defects` accepts) used to re-sample
            faults when the ladder widens the fabric.  Without it the
            widened rung is skipped when ``defects`` is non-empty —
            pretending a wider fabric is fault-free would be lying.
        max_widen: How many widened widths to try.
        widen_step: Channel-width increment per widened attempt.
        route_kernel: Expansion kernel for every rung's router (see
            `repro.vpr.route_kernels`); bit-identical across kernels,
            so the repair outcome never depends on it.
        **router_kwargs: Forwarded to every `PathFinderRouter`.
    """
    if route_kernel is not None:
        router_kwargs["kernel"] = route_kernel
    params = placement.clustered.params
    if graph is None:
        graph = get_fabric(params, placement.grid_width, placement.grid_height)
    defects.validate_against(graph)
    width = graph.params.channel_width

    registry = get_registry()
    pub = get_publisher()
    registry.counter("repair.runs").inc()
    attempts: List[RepairAttempt] = []
    nets_ripped = 0

    def _rung(attempt: RepairAttempt) -> None:
        """Record a ladder rung and stream it to any live watcher."""
        attempts.append(attempt)
        if pub.enabled:
            pub.progress("repair.stage", stage=attempt.stage,
                         channel_width=attempt.channel_width,
                         success=attempt.success,
                         nets_ripped=nets_ripped)

    def _finish(
        stage: str, success: bool, result: RoutingResult,
        ir: FabricIR, w: int, final_defects: FabricDefectMap,
        victims: List[str],
    ) -> RepairResult:
        registry.gauge("repair.stage").set(REPAIR_STAGES.index(stage))
        if not success:
            registry.counter("repair.failures").inc()
        return RepairResult(
            stage=stage, success=success, routing=result, graph=ir,
            channel_width=w, defects=final_defects,
            victim_nets=victims, nets_ripped=nets_ripped, attempts=attempts,
        )

    with get_tracer().span(
        "repair.run", defects=defects.total, channel_width=width
    ) as span:
        victims = find_victims(routing, defects)
        span.set("victims", len(victims))

        if not victims:
            span.set("stage", "clean")
            _rung(RepairAttempt(
                stage="clean", channel_width=width, success=True,
                nets_rerouted=0, iterations=0))
            return _finish("clean", True, routing, graph, width, defects, victims)

        nets = build_route_nets(placement)
        nets_by_name = {net.name: net for net in nets}
        victim_nets = [nets_by_name[name] for name in victims if name in nets_by_name]
        fixed = {
            name: tree for name, tree in routing.trees.items()
            if name not in set(victims)
        }

        # -- rung 1: incremental ---------------------------------------
        with get_tracer().span("repair.incremental", victims=len(victims)):
            router = PathFinderRouter(
                graph,
                blocked_nodes=sorted(defects.blocked_nodes()),
                blocked_edges=sorted(defects.blocked_edges()),
                **router_kwargs,
            )
            partial = router.route(victim_nets, fixed_trees=fixed)
        nets_ripped += len(victims)
        registry.counter("repair.nets_ripped").inc(len(victims))
        _rung(RepairAttempt(
            stage="incremental", channel_width=width, success=partial.success,
            nets_rerouted=len(victim_nets), iterations=partial.iterations))
        if partial.success:
            merged_trees = dict(fixed)
            merged_trees.update(partial.trees)
            merged = RoutingResult(
                success=True,
                iterations=partial.iterations,
                trees=merged_trees,
                overused_nodes=0,
                wirelength=_merged_wirelength(graph, merged_trees),
                convergence=partial.convergence,
            )
            span.set("stage", "incremental")
            _log.info("repair ok %s", kv(stage="incremental", victims=len(victims)))
            return _finish("incremental", True, merged, graph, width, defects, victims)

        # -- rung 2: full reroute, same width --------------------------
        with get_tracer().span("repair.full", nets=len(nets)):
            router = PathFinderRouter(
                graph,
                blocked_nodes=sorted(defects.blocked_nodes()),
                blocked_edges=sorted(defects.blocked_edges()),
                **router_kwargs,
            )
            full = router.route(nets)
        nets_ripped += len(nets)
        registry.counter("repair.nets_ripped").inc(len(nets))
        _rung(RepairAttempt(
            stage="full", channel_width=width, success=full.success,
            nets_rerouted=len(nets), iterations=full.iterations))
        if full.success:
            span.set("stage", "full")
            _log.info("repair ok %s", kv(stage="full", nets=len(nets)))
            return _finish("full", True, full, graph, width, defects, victims)

        # -- rung 3: widen the fabric ----------------------------------
        last: Tuple[RoutingResult, FabricIR, int, FabricDefectMap] = (
            full, graph, width, defects)
        can_widen = campaign is not None or defects.clean
        if not can_widen:
            _log.info("repair cannot widen %s", kv(
                reason="no campaign to re-sample defects", defects=defects.total))
        for step in range(1, max_widen + 1) if can_widen else ():
            new_width = width + step * widen_step
            wide_ir = get_fabric(
                params.with_channel_width(new_width),
                placement.grid_width, placement.grid_height)
            wide_defects = resolve_defects(campaign, wide_ir)
            if wide_defects is None:
                from .defects import empty_defect_map
                wide_defects = empty_defect_map(wide_ir)
            with get_tracer().span("repair.widen", channel_width=new_width):
                router = PathFinderRouter(
                    wide_ir,
                    blocked_nodes=sorted(wide_defects.blocked_nodes()),
                    blocked_edges=sorted(wide_defects.blocked_edges()),
                    **router_kwargs,
                )
                wide = router.route(nets)
            nets_ripped += len(nets)
            registry.counter("repair.nets_ripped").inc(len(nets))
            _rung(RepairAttempt(
                stage="widened", channel_width=new_width, success=wide.success,
                nets_rerouted=len(nets), iterations=wide.iterations))
            last = (wide, wide_ir, new_width, wide_defects)
            if wide.success:
                span.set("stage", "widened")
                span.set("channel_width_final", new_width)
                _log.info("repair ok %s", kv(stage="widened", width=new_width))
                return _finish(
                    "widened", True, wide, wide_ir, new_width, wide_defects,
                    victims)

        span.set("stage", "failed")
        _log.info("repair failed %s", kv(victims=len(victims)))
        result, ir, w, final_defects = last
        return _finish("failed", False, result, ir, w, final_defects, victims)
