"""Campaign evaluation: routability-vs-defect-rate yield curves.

`run_defect_sweep` answers the system-level question the fault model
exists for: *how much hardware degradation can the CAD flow absorb?*
It routes a circuit once on a clean fabric, then replays seeded fault
campaigns at increasing defect rates against that same routed design,
repairing each with the degradation ladder (`repair_routing`) and
aggregating, per rate:

* yield — fraction of campaigns ending in a legal routing at all;
* incremental yield — fraction absorbed by the cheapest rung (victim
  nets rerouted, healthy trees untouched);
* repair cost — nets ripped, wirelength inflation vs the clean route.

Every outcome carries the defect map's digest and the repaired
routing's digest, so the whole sweep is bit-reproducible from
``(campaign seeds, fabric key)`` — the property the robustness
benchmark asserts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.params import ArchParams
from ..netlist.core import Netlist
from ..obs import get_logger, get_registry, get_tracer, kv
from ..vpr.flow import run_flow
from .campaign import FaultCampaign
from .defects import canonical_digest, chain_is_nested
from .repair import RepairResult, repair_routing

_log = get_logger("faults.evaluate")


def routing_digest(routing, channel_width: int) -> str:
    """Stable digest of a routing's trees (batch-runner compatible)."""
    trees = {
        name: {
            "parent": sorted((int(k), int(v)) for k, v in tree.parent.items()),
            "sinks": sorted(int(s) for s in tree.sink_nodes),
        }
        for name, tree in routing.trees.items()
    }
    return canonical_digest({"channel_width": channel_width, "trees": trees})


@dataclasses.dataclass(frozen=True)
class CampaignOutcome:
    """One (rate, campaign) cell of a defect sweep."""

    rate: float
    campaign_seed: int
    defects: int
    defect_digest: str
    stage: str
    success: bool
    victim_nets: int
    nets_ripped: int
    channel_width: int
    wirelength: int
    routing_digest: str

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class FaultSetChain:
    """One campaign seed's fault sets across the swept rates, in rate
    order — the nested-fault-set invariant, made inspectable.

    ``run_defect_sweep`` keeps each campaign's seed constant while the
    rate grows, so the sampled sets must nest (`chain_is_nested`,
    the same check the mission simulator applies across epochs).
    ``nested`` records the verified outcome; a False here would mean
    the sampling contract broke, and the sweep raises before
    returning one.
    """

    campaign_seed: int
    rates: Tuple[float, ...]
    digests: Tuple[str, ...]
    defect_counts: Tuple[int, ...]
    nested: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign_seed": self.campaign_seed,
            "rates": list(self.rates),
            "digests": list(self.digests),
            "defect_counts": list(self.defect_counts),
            "nested": self.nested,
        }


@dataclasses.dataclass
class DefectSweep:
    """Full sweep outcome (see `run_defect_sweep`)."""

    circuit: str
    channel_width: int
    clean_wirelength: int
    clean_digest: str
    rates: List[float]
    outcomes: List[CampaignOutcome]
    chains: List[FaultSetChain] = dataclasses.field(default_factory=list)

    def at_rate(self, rate: float) -> List[CampaignOutcome]:
        return [o for o in self.outcomes if o.rate == rate]

    def chain_for(self, campaign_seed: int) -> FaultSetChain:
        """The per-rate fault-set chain one campaign seed sampled."""
        for chain in self.chains:
            if chain.campaign_seed == campaign_seed:
                return chain
        raise KeyError(f"no chain for campaign seed {campaign_seed}")

    def yield_curve(self) -> List[Dict[str, object]]:
        """Per-rate aggregate rows (the plot the sweep exists for)."""
        rows: List[Dict[str, object]] = []
        for rate in self.rates:
            cells = self.at_rate(rate)
            n = len(cells)
            ok = [c for c in cells if c.success]
            incremental = [c for c in ok if c.stage in ("clean", "incremental")]
            wl = [c.wirelength for c in ok]
            rows.append({
                "rate": rate,
                "campaigns": n,
                "yield": len(ok) / n if n else 0.0,
                "incremental_yield": len(incremental) / n if n else 0.0,
                "mean_defects": sum(c.defects for c in cells) / n if n else 0.0,
                "mean_nets_ripped": (
                    sum(c.nets_ripped for c in ok) / len(ok) if ok else 0.0),
                "mean_wirelength": sum(wl) / len(wl) if wl else 0.0,
                "wirelength_overhead": (
                    (sum(wl) / len(wl)) / self.clean_wirelength - 1.0
                    if wl and self.clean_wirelength else 0.0),
                "stages": {
                    stage: sum(1 for c in cells if c.stage == stage)
                    for stage in sorted({c.stage for c in cells})
                },
            })
        return rows

    def to_dict(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit,
            "channel_width": self.channel_width,
            "clean_wirelength": self.clean_wirelength,
            "clean_digest": self.clean_digest,
            "rates": self.rates,
            "yield_curve": self.yield_curve(),
            "outcomes": [o.to_dict() for o in self.outcomes],
            "chains": [c.to_dict() for c in self.chains],
        }


def run_defect_sweep(
    netlist: Netlist,
    params: ArchParams,
    channel_width: Optional[int] = None,
    rates: Sequence[float] = (0.005, 0.01, 0.02),
    campaigns: int = 5,
    base_seed: int = 0,
    mode: str = "uniform",
    stuck_closed_fraction: float = 0.0,
    seed: int = 1,
    max_widen: int = 3,
    **router_kwargs,
) -> DefectSweep:
    """Route clean once, then repair under seeded campaigns per rate.

    Args:
        netlist: Circuit to evaluate.
        params: Architecture.
        channel_width: Fixed W (defaults to the architecture's).
        rates: Total per-switch defect probabilities to sweep.
        campaigns: Independent campaigns per rate (seeds
            ``base_seed .. base_seed + campaigns - 1``; campaign ``i``
            keeps its seed across rates, so the fault sets nest as the
            rate grows — the yield curve is monotone in hardware, not
            sampling noise).
        mode: Campaign sampling mode (`FaultCampaign.mode`).
        stuck_closed_fraction: Portion of each rate sampled as
            stuck-closed (stiction) rather than stuck-open.
        seed: Placement seed of the clean route.
        max_widen: Degradation-ladder widening budget.
    """
    if not 0.0 <= stuck_closed_fraction <= 1.0:
        raise ValueError("stuck_closed_fraction must be in [0, 1]")
    if campaigns < 1:
        raise ValueError("campaigns must be >= 1")
    rates = [float(r) for r in rates]
    with get_tracer().span(
        "faults.sweep", circuit=netlist.name, rates=len(rates),
        campaigns=campaigns,
    ) as span:
        flow = run_flow(
            netlist, params, seed=seed, channel_width=channel_width,
            **router_kwargs)
        if not flow.success:
            raise RuntimeError(
                f"clean fabric unroutable at W={flow.channel_width}; "
                "widen the channel before sweeping defects")
        clean_digest = routing_digest(flow.routing, flow.channel_width)

        outcomes: List[CampaignOutcome] = []
        maps_by_seed: Dict[int, List] = {
            base_seed + i: [] for i in range(campaigns)}
        for rate in rates:
            for i in range(campaigns):
                campaign = FaultCampaign(
                    seed=base_seed + i,
                    mode=mode,
                    stuck_open_rate=rate * (1.0 - stuck_closed_fraction),
                    stuck_closed_rate=rate * stuck_closed_fraction,
                )
                defect_map = campaign.for_fabric(flow.graph)
                maps_by_seed[campaign.seed].append(defect_map)
                repair = repair_routing(
                    flow.placement, flow.routing, defect_map,
                    graph=flow.graph, campaign=campaign,
                    max_widen=max_widen, **router_kwargs)
                outcomes.append(_outcome_of(rate, campaign, defect_map, repair))
                _log.debug("sweep cell %s", kv(
                    rate=rate, campaign=campaign.seed, stage=repair.stage,
                    success=repair.success))
        chains = []
        for campaign_seed in sorted(maps_by_seed):
            maps = maps_by_seed[campaign_seed]
            nested = chain_is_nested(maps)
            if not nested:
                raise RuntimeError(
                    f"fault sets for campaign seed {campaign_seed} are not "
                    "nested across rates — the sampling contract broke")
            chains.append(FaultSetChain(
                campaign_seed=campaign_seed,
                rates=tuple(rates),
                digests=tuple(m.digest for m in maps),
                defect_counts=tuple(m.total for m in maps),
                nested=nested,
            ))
        sweep = DefectSweep(
            circuit=netlist.name,
            channel_width=flow.channel_width,
            clean_wirelength=flow.routing.wirelength,
            clean_digest=clean_digest,
            rates=rates,
            outcomes=outcomes,
            chains=chains,
        )
        curve = sweep.yield_curve()
        span.set("yield_curve", curve)
        registry = get_registry()
        registry.counter("faults.sweep_cells").inc(len(outcomes))
        if curve:
            registry.gauge("faults.worst_yield").set(
                min(row["yield"] for row in curve))
        return sweep


def _outcome_of(
    rate: float,
    campaign: FaultCampaign,
    defect_map,
    repair: RepairResult,
) -> CampaignOutcome:
    return CampaignOutcome(
        rate=rate,
        campaign_seed=campaign.seed,
        defects=defect_map.total,
        defect_digest=defect_map.digest,
        stage=repair.stage,
        success=repair.success,
        victim_nets=len(repair.victim_nets),
        nets_ripped=repair.nets_ripped,
        channel_width=repair.channel_width,
        wirelength=repair.routing.wirelength,
        routing_digest=routing_digest(repair.routing, repair.channel_width),
    )
