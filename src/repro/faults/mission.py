"""Lifetime mission simulation: epoch-stepped aging with self-repair.

The static fault tools answer "can the flow absorb *this* defect map?"
This module answers the paper's actual reliability question: *how does
a routed NEM-relay FPGA degrade over device-years of operation, and
how much lifetime does each maintenance strategy buy?*

`simulate_mission` steps simulated device-time in epochs.  Each epoch:

1. **wear accrual** — per-site actuation counts grow by the epoch's
   reconfiguration baseline plus signal toggling on routed sites
   (`site_actuations` over the current bitstream, scaled by netlist
   switching activity), summed into a cumulative accumulator;
2. **fault arrival** — the cumulative accumulator is handed to one
   fixed-seed aging `FaultCampaign` via ``for_fabric(actuations=...)``.
   Because the campaign's per-site uniform draw depends only on
   ``(seed, fabric key)``, growing actuations yield *nested* fault
   sets — each epoch's map contains the previous one, asserted with
   `defect_maps_nested` every step;
3. **maintenance** — per the `RepairPolicy`: scheduled fabric BIST
   (`run_fabric_bist`) before the service interval detects faults and
   triggers the `repair_routing` graceful-degradation ladder (or a
   proactive channel-widening for ``widen-early``) so the epoch runs
   healthy; *reactive* policies instead repair at epoch end after an
   observed failure, eating one epoch of downtime per event;
4. **service** — the epoch counts healthy iff the carried routing
   touches no faulty resource during its interval.

Repaired state carries over between epochs through
`FlowResult.with_routing`; a widened repair moves the whole trajectory
onto the wider fabric (new node-id space, wear accumulator re-baselined
to the programming-cycle count the ladder itself assumed for it).

Policies (`resolve_policy`):

* ``never`` — no BIST, no repair; the first victim is permanent.
* ``on-failure`` — purely reactive: repair after observed failures.
* ``periodic-<k>`` — BIST + repair every k-th epoch, no reaction
  in between (failures wait, as downtime, for the next window).
* ``every-epoch-bist`` — scheduled BIST every epoch: faults are
  repaired before they cause downtime.
* ``widen-early`` — ``every-epoch-bist`` plus a proactive jump to a
  wider channel on the first detected fault, buying routing slack
  before wear concentrates.

Everything is deterministic: same ``(circuit, seed, policy, spec)``
produces byte-identical per-epoch records, fault-set digests and
degradation curves in any process — the property the batch runner's
``mission`` axis and the CI mission-smoke job assert serial vs
parallel vs store-warm replay.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.params import ArchParams
from ..fabric import get_fabric
from ..netlist.core import Netlist
from ..obs import get_logger, get_publisher, get_registry, get_tracer, kv
from ..vpr.flow import FlowResult, run_flow
from ..vpr.route import PathFinderRouter, build_route_nets
from .bist import run_fabric_bist
from .campaign import FaultCampaign, site_actuations, switch_sites
from .defects import FabricDefectMap, canonical_digest, defect_maps_nested
from .evaluate import routing_digest
from .repair import find_victims, repair_routing

_log = get_logger("faults.mission")

#: Base policy spellings (``periodic-k`` stands for ``periodic-<int>``).
MISSION_POLICIES = (
    "never", "on-failure", "periodic-k", "every-epoch-bist", "widen-early",
)


@dataclasses.dataclass(frozen=True)
class RepairPolicy:
    """When a mission runs BIST and how aggressively it repairs.

    Attributes:
        name: Canonical policy spelling (stable across runs; part of
            job keys and digests).
        bist_period: Scheduled-BIST cadence in epochs (``1`` = every
            epoch); ``None`` disables scheduled testing entirely.
        reactive: Whether an *observed* in-service failure triggers
            BIST + repair at the end of its epoch.  The epoch still
            counts as downtime — reaction restores the following
            epochs, scheduling prevents the outage.
        widen_threshold: When set, a scheduled BIST that detects a
            faulty-site fraction above this value while the design is
            still at its original width proactively widens the channel
            by ``widen_step`` (the ``widen-early`` move).
        max_widen / widen_step: Degradation-ladder widening budget
            forwarded to `repair_routing`.
    """

    name: str
    bist_period: Optional[int] = None
    reactive: bool = False
    widen_threshold: Optional[float] = None
    max_widen: int = 3
    widen_step: int = 2

    def __post_init__(self) -> None:
        if self.bist_period is not None and self.bist_period < 1:
            raise ValueError(
                f"bist_period must be >= 1, got {self.bist_period}")
        if self.widen_threshold is not None and self.widen_threshold < 0:
            raise ValueError("widen_threshold must be >= 0")
        if self.max_widen < 0 or self.widen_step < 1:
            raise ValueError("max_widen must be >= 0 and widen_step >= 1")


def policy_name_valid(name: str) -> bool:
    """Whether ``name`` spells a known repair policy.

    Kept dependency-free so the batch-runner spec layer can validate
    job axes without importing the simulator.
    """
    if name in ("never", "on-failure", "every-epoch-bist", "widen-early"):
        return True
    if name.startswith("periodic-"):
        suffix = name[len("periodic-"):]
        return suffix.isdigit() and int(suffix) >= 1
    return False


def resolve_policy(spec: object) -> RepairPolicy:
    """Coerce a policy spelling (or a ready `RepairPolicy`) to a policy."""
    if isinstance(spec, RepairPolicy):
        return spec
    name = str(spec)
    if name == "never":
        return RepairPolicy(name)
    if name == "on-failure":
        return RepairPolicy(name, reactive=True)
    if name == "every-epoch-bist":
        return RepairPolicy(name, bist_period=1, reactive=True)
    if name == "widen-early":
        return RepairPolicy(
            name, bist_period=1, reactive=True, widen_threshold=0.0)
    if name.startswith("periodic-"):
        suffix = name[len("periodic-"):]
        if suffix.isdigit() and int(suffix) >= 1:
            return RepairPolicy(name, bist_period=int(suffix))
        raise ValueError(
            f"periodic policy needs a positive epoch count, got {name!r}")
    raise ValueError(
        f"unknown repair policy {name!r}; expected one of "
        f"{MISSION_POLICIES} (periodic-k spelt e.g. 'periodic-2')")


@dataclasses.dataclass(frozen=True)
class MissionSpec:
    """One lifetime mission's parameters (fabric- and circuit-free).

    Attributes:
        epochs: Number of equal device-time steps.
        years: Total simulated mission length in device-years.
        policy: Repair policy spelling (see `resolve_policy`).
        campaigns: Independent aging trajectories (seeds
            ``base_seed .. base_seed + campaigns - 1``); yield at each
            epoch is the fraction of trajectories running healthy.
        cycles_per_year: Signal-toggle cycles a routed site sees per
            device-year *before* activity scaling.
        reconfigurations_per_year: Baseline programming actuations
            every site sees per device-year regardless of use.
        eta / beta: Weibull endurance parameters (`WeibullEndurance`).
    """

    epochs: int = 8
    years: float = 10.0
    policy: str = "on-failure"
    campaigns: int = 3
    base_seed: int = 0
    cycles_per_year: float = 5e7
    reconfigurations_per_year: float = 100.0
    eta: float = 1e9
    beta: float = 1.6

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.years <= 0:
            raise ValueError(f"years must be > 0, got {self.years}")
        if self.campaigns < 1:
            raise ValueError(f"campaigns must be >= 1, got {self.campaigns}")
        if self.cycles_per_year < 0 or self.reconfigurations_per_year < 0:
            raise ValueError(
                "cycles_per_year and reconfigurations_per_year must be >= 0")
        if self.eta <= 0 or self.beta <= 0:
            raise ValueError("eta and beta must be positive")
        resolve_policy(self.policy)  # validates the spelling

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "MissionSpec":
        return cls(**{
            f.name: doc[f.name]
            for f in dataclasses.fields(cls) if f.name in doc
        })


@dataclasses.dataclass(frozen=True)
class EpochRecord:
    """One trajectory's state after one epoch.

    ``healthy`` is the service verdict for *this* epoch (no routed net
    touched a faulty resource during the interval); ``alive`` is
    whether the trajectory can still be serviced at all afterwards —
    False once a repair attempt fails, or immediately under ``never``,
    since no future mechanism exists.
    """

    epoch: int
    device_years: float
    defects: int
    new_defects: int
    defect_digest: str
    victims: int
    bist: bool
    detected: int
    repair_stage: Optional[str]
    repair_success: Optional[bool]
    nets_ripped: int
    channel_width: int
    wirelength: int
    wirelength_overhead: float
    healthy: bool
    alive: bool

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class MissionTrajectory:
    """One campaign seed's full lifetime under one policy."""

    campaign_seed: int
    records: List[EpochRecord]
    failed_epoch: Optional[int]
    bist_runs: int
    repairs: int
    final_channel_width: int

    @property
    def alive(self) -> bool:
        return self.failed_epoch is None

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign_seed": self.campaign_seed,
            "failed_epoch": self.failed_epoch,
            "bist_runs": self.bist_runs,
            "repairs": self.repairs,
            "final_channel_width": self.final_channel_width,
            "records": [r.to_dict() for r in self.records],
        }


def aggregate_degradation(
    trajectory_records: Sequence[Sequence[Dict[str, object]]],
    epochs: int,
    years: float,
) -> List[Dict[str, object]]:
    """Per-epoch aggregate rows across trajectories — the degradation
    curve.

    Operates on plain record dicts (`EpochRecord.to_dict` shape) so the
    CLI can re-aggregate curves straight from batch-runner QoR JSON.
    A trajectory that died early holds its final record for the
    remaining epochs (dead is dead: yield contribution zero, last
    known hardware state carried).
    """
    rows: List[Dict[str, object]] = []
    n = len(trajectory_records)
    for epoch in range(1, epochs + 1):
        cur: List[Tuple[Dict[str, object], bool]] = []
        for records in trajectory_records:
            if not records:
                continue
            live = epoch <= len(records)
            cur.append((records[min(epoch, len(records)) - 1], live))
        if not cur:
            break
        healthy = sum(
            1 for r, live in cur if live and r["healthy"])
        dead = sum(1 for r, live in cur if not live or not r["alive"])
        rows.append({
            "epoch": epoch,
            "device_years": years * epoch / epochs,
            "yield": healthy / n,
            "dead": dead,
            "mean_defects": sum(r["defects"] for r, _ in cur) / n,
            "mean_channel_width": (
                sum(r["channel_width"] for r, _ in cur) / n),
            "mean_wirelength_overhead": (
                sum(r["wirelength_overhead"] for r, _ in cur) / n),
            "repairs": sum(
                1 for r, live in cur
                if live and r["repair_stage"] not in (None, "clean")),
            "bist_runs": sum(1 for r, live in cur if live and r["bist"]),
        })
    return rows


@dataclasses.dataclass
class MissionResult:
    """Outcome of `simulate_mission` (one circuit, one policy)."""

    circuit: str
    policy: str
    spec: MissionSpec
    channel_width: int
    clean_wirelength: int
    clean_digest: str
    trajectories: List[MissionTrajectory]

    def degradation_curve(self) -> List[Dict[str, object]]:
        return aggregate_degradation(
            [[r.to_dict() for r in t.records] for t in self.trajectories],
            self.spec.epochs, self.spec.years)

    @property
    def time_to_first_unrepairable(self) -> Optional[float]:
        """Device-years until the earliest trajectory became
        unserviceable, or None when every trajectory survived."""
        failed = [
            self.spec.years * t.failed_epoch / self.spec.epochs
            for t in self.trajectories if t.failed_epoch is not None
        ]
        return min(failed) if failed else None

    @property
    def digest(self) -> str:
        """Stable content digest of everything deterministic here."""
        return canonical_digest({
            "circuit": self.circuit,
            "policy": self.policy,
            "spec": self.spec.to_dict(),
            "channel_width": self.channel_width,
            "clean_digest": self.clean_digest,
            "trajectories": [t.to_dict() for t in self.trajectories],
        })

    def to_dict(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit,
            "policy": self.policy,
            "spec": self.spec.to_dict(),
            "channel_width": self.channel_width,
            "clean_wirelength": self.clean_wirelength,
            "clean_digest": self.clean_digest,
            "degradation_curve": self.degradation_curve(),
            "time_to_first_unrepairable": self.time_to_first_unrepairable,
            "trajectories": [t.to_dict() for t in self.trajectories],
            "digest": self.digest,
        }


def _route_widened(
    placement, campaign: FaultCampaign, new_width: int, **router_kwargs
):
    """Proactively move the design to a wider fabric.

    Samples the campaign's faults on the fresh fabric (node ids — and
    the physical relay population — change with the width) and reroutes
    every net around them.  Returns ``(routing, ir, width, defects)``
    or None when the wider fabric cannot carry the design either.
    """
    params = placement.clustered.params
    wide_ir = get_fabric(
        params.with_channel_width(new_width),
        placement.grid_width, placement.grid_height)
    wide_defects = campaign.for_fabric(wide_ir)
    router = PathFinderRouter(
        wide_ir,
        blocked_nodes=sorted(wide_defects.blocked_nodes()),
        blocked_edges=sorted(wide_defects.blocked_edges()),
        **router_kwargs,
    )
    result = router.route(build_route_nets(placement))
    if not result.success:
        return None
    return result, wide_ir, new_width, wide_defects


def _simulate_trajectory(
    flow: FlowResult,
    spec: MissionSpec,
    policy: RepairPolicy,
    campaign_seed: int,
    activities: Dict[str, float],
    **router_kwargs,
) -> MissionTrajectory:
    """One campaign seed's epoch loop (see module doc)."""
    from ..config.bitstream import extract_bitstream

    placement = flow.placement
    state = flow
    base_width = flow.channel_width
    clean_wl = flow.routing.wirelength

    sites = switch_sites(state.graph)
    actuations = np.zeros(len(sites))
    bitstream = extract_bitstream(state.routing, state.graph)

    dt_years = spec.years / spec.epochs
    cycles_per_epoch = spec.cycles_per_year * dt_years
    reconfig_per_epoch = spec.reconfigurations_per_year * dt_years
    cum_cycles = 0.0
    cum_reconfig = 0.0

    prev_map: Optional[FabricDefectMap] = None
    current_map: Optional[FabricDefectMap] = None
    records: List[EpochRecord] = []
    bist_runs = 0
    repairs = 0
    failed_epoch: Optional[int] = None

    tracer = get_tracer()
    pub = get_publisher()

    def attempt_repair(
        known: FabricDefectMap, campaign: FaultCampaign, forced_widen: bool
    ) -> Tuple[str, bool, int]:
        """One maintenance action; carries repaired state over on
        success (possibly onto a wider fabric)."""
        nonlocal state, sites, actuations, bitstream, current_map
        if forced_widen:
            outcome = _route_widened(
                placement, campaign,
                state.channel_width + policy.widen_step, **router_kwargs)
            if outcome is not None:
                routing, wide_ir, wide_width, wide_defects = outcome
                state = state.with_routing(routing, wide_ir, wide_width)
                sites = switch_sites(wide_ir)
                # The wider fabric's relays carry only the programming
                # baseline — exactly the wear the campaign sampled for
                # it — so the accumulator re-baselines to match and
                # later epochs keep nesting against `wide_defects`.
                actuations = np.full(len(sites), cum_reconfig)
                bitstream = extract_bitstream(routing, wide_ir)
                current_map = wide_defects
                return "widened", True, len(routing.trees)
            # The wider fabric refused the design outright: fall back
            # to the ordinary ladder on the current fabric.
        repair = repair_routing(
            placement, state.routing, known, graph=state.graph,
            campaign=campaign, max_widen=policy.max_widen,
            widen_step=policy.widen_step, **router_kwargs)
        if repair.success:
            if repair.channel_width != state.channel_width:
                state = state.with_routing(
                    repair.routing, repair.graph, repair.channel_width)
                sites = switch_sites(repair.graph)
                actuations = np.full(len(sites), cum_reconfig)
                current_map = repair.defects
            else:
                state = state.with_routing(repair.routing)
                current_map = known
            bitstream = extract_bitstream(state.routing, state.graph)
        return repair.stage, repair.success, repair.nets_ripped

    with tracer.span(
        "mission.trajectory", campaign_seed=campaign_seed,
        policy=policy.name,
    ) as traj_span:
        for epoch in range(1, spec.epochs + 1):
            cum_cycles += cycles_per_epoch
            cum_reconfig += reconfig_per_epoch
            actuations = actuations + site_actuations(
                sites, bitstream, activities,
                cycles=cycles_per_epoch,
                reconfigurations=reconfig_per_epoch)
            campaign = FaultCampaign(
                seed=campaign_seed, mode="aging",
                cycles=cum_cycles, reconfigurations=cum_reconfig,
                eta=spec.eta, beta=spec.beta)
            true_map = campaign.for_fabric(state.graph, actuations=actuations)
            if prev_map is not None and not defect_maps_nested(
                prev_map, true_map
            ):
                raise RuntimeError(
                    "mission fault sets failed to nest across epochs — "
                    "the aging sampling contract broke")
            new_defects = true_map.total - (
                prev_map.total if prev_map is not None else 0)
            current_map = true_map

            with tracer.span(
                "mission.epoch", epoch=epoch, campaign_seed=campaign_seed
            ) as span:
                bist_ran = False
                detected = 0
                repair_stage: Optional[str] = None
                repair_success: Optional[bool] = None
                nets_ripped = 0
                alive = True

                # -- scheduled maintenance (before the service interval)
                scheduled = (policy.bist_period is not None
                             and epoch % policy.bist_period == 0)
                if scheduled:
                    known = run_fabric_bist(state.graph, current_map)
                    bist_ran = True
                    bist_runs += 1
                    detected = known.total
                    forced_widen = (
                        policy.widen_threshold is not None
                        and state.channel_width == base_width
                        and len(sites) > 0
                        and known.total / len(sites) > policy.widen_threshold)
                    if forced_widen or find_victims(state.routing, known):
                        repairs += 1
                        repair_stage, repair_success, nets_ripped = (
                            attempt_repair(known, campaign, forced_widen))
                        alive = bool(repair_success)

                # -- service interval ------------------------------------
                victims = find_victims(state.routing, current_map)
                healthy = alive and not victims

                # -- reaction (the failure already cost this epoch) ------
                if alive and victims:
                    if policy.reactive:
                        known = run_fabric_bist(state.graph, current_map)
                        bist_ran = True
                        bist_runs += 1
                        detected = known.total
                        repairs += 1
                        repair_stage, repair_success, nets_ripped = (
                            attempt_repair(known, campaign, False))
                        alive = bool(repair_success)
                    elif policy.bist_period is None:
                        # No repair mechanism will ever run again.
                        alive = False

                wl = state.routing.wirelength
                record = EpochRecord(
                    epoch=epoch,
                    device_years=dt_years * epoch,
                    defects=current_map.total,
                    new_defects=new_defects,
                    defect_digest=current_map.digest,
                    victims=len(victims),
                    bist=bist_ran,
                    detected=detected,
                    repair_stage=repair_stage,
                    repair_success=repair_success,
                    nets_ripped=nets_ripped,
                    channel_width=state.channel_width,
                    wirelength=wl,
                    wirelength_overhead=(
                        wl / clean_wl - 1.0 if clean_wl else 0.0),
                    healthy=healthy,
                    alive=alive,
                )
                records.append(record)
                span.set_many(
                    defects=current_map.total,
                    new_defects=new_defects,
                    victims=len(victims),
                    stage=repair_stage or "",
                    healthy=healthy,
                    alive=alive,
                    channel_width=state.channel_width,
                    device_years=record.device_years,
                )
                if pub.enabled:
                    pub.progress(
                        "mission.epoch", policy=policy.name,
                        campaign_seed=campaign_seed, epoch=epoch,
                        defects=current_map.total, victims=len(victims),
                        healthy=healthy)
            prev_map = current_map
            if not alive:
                failed_epoch = epoch
                _log.info("mission trajectory down %s", kv(
                    campaign_seed=campaign_seed, epoch=epoch,
                    policy=policy.name))
                break

        traj_span.set_many(
            epochs_survived=len(records),
            failed_epoch=failed_epoch,
            repairs=repairs,
            bist_runs=bist_runs,
            final_channel_width=state.channel_width,
        )
    return MissionTrajectory(
        campaign_seed=campaign_seed,
        records=records,
        failed_epoch=failed_epoch,
        bist_runs=bist_runs,
        repairs=repairs,
        final_channel_width=state.channel_width,
    )


def simulate_mission(
    flow: FlowResult,
    spec: MissionSpec,
    activities: Optional[Dict[str, float]] = None,
    route_kernel: Optional[str] = None,
    **router_kwargs,
) -> MissionResult:
    """Run one lifetime mission over an already-routed clean flow.

    Args:
        flow: A successful `run_flow` outcome; the mission carries its
            routed state forward, epoch by epoch (the original flow is
            never mutated).
        spec: Mission parameters (`MissionSpec`).
        activities: Net switching densities; defaults to
            `power.activity.estimate_activities` on the flow's netlist.
        route_kernel: Expansion kernel for every repair-path router
            (bit-identical across kernels).
        **router_kwargs: Forwarded to every `PathFinderRouter`.
    """
    if not flow.success:
        raise ValueError("mission requires a legally routed clean flow")
    if route_kernel is not None:
        router_kwargs["kernel"] = route_kernel
    policy = resolve_policy(spec.policy)
    if activities is None:
        from ..power.activity import estimate_activities
        activities = estimate_activities(flow.netlist)

    with get_tracer().span(
        "mission.run", circuit=flow.netlist.name, policy=policy.name,
        epochs=spec.epochs, campaigns=spec.campaigns, years=spec.years,
    ) as span:
        trajectories = [
            _simulate_trajectory(
                flow, spec, policy, spec.base_seed + i, activities,
                **router_kwargs)
            for i in range(spec.campaigns)
        ]
        result = MissionResult(
            circuit=flow.netlist.name,
            policy=policy.name,
            spec=spec,
            channel_width=flow.channel_width,
            clean_wirelength=flow.routing.wirelength,
            clean_digest=routing_digest(flow.routing, flow.channel_width),
            trajectories=trajectories,
        )
        curve = result.degradation_curve()
        ttf = result.time_to_first_unrepairable
        span.set("degradation", curve)
        span.set_many(
            ttf_years=ttf,
            final_yield=curve[-1]["yield"] if curve else 0.0,
            digest=result.digest[:12],
        )
        registry = get_registry()
        registry.counter("mission.epochs").inc(
            sum(len(t.records) for t in trajectories))
        registry.counter("mission.bist_runs").inc(
            sum(t.bist_runs for t in trajectories))
        registry.counter("mission.repairs").inc(
            sum(t.repairs for t in trajectories))
        registry.counter("mission.failures").inc(
            sum(1 for t in trajectories if t.failed_epoch is not None))
        if curve:
            registry.gauge("mission.final_yield").set(curve[-1]["yield"])
        _log.info("mission done %s", kv(
            circuit=flow.netlist.name, policy=policy.name,
            ttf=ttf, final_yield=curve[-1]["yield"] if curve else None))
        return result


def run_mission(
    netlist: Netlist,
    params: ArchParams,
    spec: MissionSpec,
    channel_width: Optional[int] = None,
    seed: int = 1,
    flow: Optional[FlowResult] = None,
    **router_kwargs,
) -> MissionResult:
    """P&R the circuit clean, then fly the mission (see
    `simulate_mission`)."""
    if flow is None:
        flow = run_flow(
            netlist, params, seed=seed, channel_width=channel_width,
            **router_kwargs)
    if not flow.success:
        raise RuntimeError(
            f"clean fabric unroutable at W={flow.channel_width}; "
            "widen the channel before flying a mission")
    return simulate_mission(flow, spec, **router_kwargs)
