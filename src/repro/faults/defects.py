"""Fabric-level defect maps (the data model of the fault subsystem).

A `FabricDefectMap` records which routing resources of one concrete
`FabricIR` are broken, at two granularities:

* **switch-level** (the physical reality): each programmable edge of
  the RR graph is one NEM relay.  Relays fail *stuck-open* (contact
  wear/contamination — the switch can never conduct) or *stuck-closed*
  (stiction — the beam adhered and never releases).  A switch site is
  identified by its *undirected* node pair ``(lo, hi)``: in a bidir
  fabric the CSR holds both directed edges, but they cross the same
  relay, so one fault kills both directions.
* **node-level**: a wire segment can be dead outright (broken metal,
  shorted programming line).  ``stuck_open_nodes`` lists such nodes.

The map is immutable, tied to its fabric by `fabric_key_of` (node ids
are meaningless across different ``(ArchParams, nx, ny)`` graphs), and
hashed by a stable content digest so campaigns, BIST outcomes and
repair results can be compared for bit-identity across processes.

Router consumption: `blocked_nodes()` / `blocked_edges()` translate
the fault classes into PathFinder avoidance sets —

* a stuck-open node blocks itself;
* a stuck-open switch blocks both directed edges across it (other
  edges into the same wires stay usable);
* a stuck-closed switch blocks *both endpoint nodes*: the two wires
  are permanently bridged, so any net using either would short into
  whatever the other carries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from functools import cached_property
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from ..fabric import FabricIR

Switch = Tuple[int, int]


def canonical_digest(obj: object) -> str:
    """sha256 hex digest of an object's canonical JSON form."""
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fabric_key_of(ir: FabricIR) -> str:
    """Stable identity of one concrete fabric: arch params + grid.

    Two `FabricIR` instances with equal keys have identical node-id
    spaces (the build is deterministic), so defect maps keyed this way
    are portable across processes but *not* across channel widths or
    grids — exactly the safety the flow layer needs.
    """
    arch = dataclasses.asdict(ir.params)
    return json.dumps({"arch": arch, "nx": ir.nx, "ny": ir.ny},
                      sort_keys=True, separators=(",", ":"))


def _canon_switches(pairs: Iterable[Switch]) -> Tuple[Switch, ...]:
    return tuple(sorted({(min(u, v), max(u, v)) for u, v in pairs}))


@dataclasses.dataclass(frozen=True)
class FabricDefectMap:
    """Immutable fault inventory of one fabric.

    Attributes:
        fabric_key: `fabric_key_of` the fabric this map belongs to.
        num_nodes: Node count of that fabric (id-range validation).
        stuck_open_nodes: Dead wire nodes (never conduct).
        stuck_open_switches: Undirected switch sites that can never
            conduct, as sorted ``(lo, hi)`` node pairs.
        stuck_closed_switches: Undirected switch sites that can never
            release (their endpoint wires are permanently bridged).
        source: Provenance tag (``campaign`` / ``bist`` / ``manual``);
            excluded from the digest so a BIST relocating a campaign's
            faults produces the *same* digest.
    """

    fabric_key: str
    num_nodes: int
    stuck_open_nodes: Tuple[int, ...] = ()
    stuck_open_switches: Tuple[Switch, ...] = ()
    stuck_closed_switches: Tuple[Switch, ...] = ()
    source: str = "campaign"

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        nodes = tuple(sorted(set(int(n) for n in self.stuck_open_nodes)))
        object.__setattr__(self, "stuck_open_nodes", nodes)
        object.__setattr__(self, "stuck_open_switches",
                           _canon_switches(self.stuck_open_switches))
        object.__setattr__(self, "stuck_closed_switches",
                           _canon_switches(self.stuck_closed_switches))
        for node in self.stuck_open_nodes:
            if not 0 <= node < self.num_nodes:
                raise ValueError(
                    f"stuck-open node {node} outside [0, {self.num_nodes})")
        for u, v in self.stuck_open_switches + self.stuck_closed_switches:
            if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
                raise ValueError(
                    f"switch ({u}, {v}) outside [0, {self.num_nodes})")
            if u == v:
                raise ValueError(f"switch ({u}, {v}) is a self-loop")
        overlap = set(self.stuck_open_switches) & set(self.stuck_closed_switches)
        if overlap:
            raise ValueError(
                f"switches both stuck-open and stuck-closed: {sorted(overlap)}")

    # -- summary -----------------------------------------------------------

    @property
    def total(self) -> int:
        return (len(self.stuck_open_nodes) + len(self.stuck_open_switches)
                + len(self.stuck_closed_switches))

    @property
    def clean(self) -> bool:
        return self.total == 0

    @cached_property
    def digest(self) -> str:
        """Stable content digest (provenance-independent)."""
        return canonical_digest({
            "fabric_key": self.fabric_key,
            "num_nodes": self.num_nodes,
            "stuck_open_nodes": list(self.stuck_open_nodes),
            "stuck_open_switches": [list(s) for s in self.stuck_open_switches],
            "stuck_closed_switches": [list(s) for s in self.stuck_closed_switches],
        })

    # -- router avoidance sets ---------------------------------------------

    @cached_property
    def _blocked_nodes(self) -> FrozenSet[int]:
        blocked = set(self.stuck_open_nodes)
        for u, v in self.stuck_closed_switches:
            blocked.add(u)
            blocked.add(v)
        return frozenset(blocked)

    @cached_property
    def _blocked_edges(self) -> FrozenSet[Tuple[int, int]]:
        edges = set()
        for u, v in self.stuck_open_switches:
            edges.add((u, v))
            edges.add((v, u))
        return frozenset(edges)

    def blocked_nodes(self) -> FrozenSet[int]:
        """Nodes the router must never use."""
        return self._blocked_nodes

    def blocked_edges(self) -> FrozenSet[Tuple[int, int]]:
        """Directed edges the router must never cross."""
        return self._blocked_edges

    # -- queries -----------------------------------------------------------

    def usable_node(self, node: int) -> bool:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside [0, {self.num_nodes})")
        return node not in self._blocked_nodes

    def usable_switch(self, u: int, v: int) -> bool:
        """Can the relay between ``u`` and ``v`` still be programmed?"""
        for node in (u, v):
            if not 0 <= node < self.num_nodes:
                raise ValueError(f"node {node} outside [0, {self.num_nodes})")
        site = (min(u, v), max(u, v))
        return (site not in self.stuck_open_switches
                and site not in self.stuck_closed_switches
                and u not in self._blocked_nodes
                and v not in self._blocked_nodes)

    def validate_against(self, ir: FabricIR) -> None:
        """Raise unless this map belongs to ``ir`` (same id space)."""
        key = fabric_key_of(ir)
        if key != self.fabric_key:
            raise ValueError(
                "defect map belongs to a different fabric (node ids are not "
                "portable across channel widths or grids); re-sample the "
                "campaign on the target fabric instead")
        if ir.num_nodes != self.num_nodes:
            raise ValueError(
                f"defect map node count {self.num_nodes} != fabric "
                f"{ir.num_nodes}")

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "fabric_key": self.fabric_key,
            "num_nodes": self.num_nodes,
            "stuck_open_nodes": list(self.stuck_open_nodes),
            "stuck_open_switches": [list(s) for s in self.stuck_open_switches],
            "stuck_closed_switches": [list(s) for s in self.stuck_closed_switches],
            "source": self.source,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FabricDefectMap":
        return cls(
            fabric_key=str(doc["fabric_key"]),
            num_nodes=int(doc["num_nodes"]),
            stuck_open_nodes=tuple(int(n) for n in doc.get("stuck_open_nodes", ())),
            stuck_open_switches=tuple(
                (int(u), int(v)) for u, v in doc.get("stuck_open_switches", ())),
            stuck_closed_switches=tuple(
                (int(u), int(v)) for u, v in doc.get("stuck_closed_switches", ())),
            source=str(doc.get("source", "campaign")),
        )


def empty_defect_map(ir: FabricIR) -> FabricDefectMap:
    """A clean map for ``ir`` (useful as a neutral default)."""
    return FabricDefectMap(fabric_key=fabric_key_of(ir), num_nodes=ir.num_nodes)


def defect_maps_nested(inner: FabricDefectMap, outer: FabricDefectMap) -> bool:
    """True when every resource faulty in ``inner`` is faulty in
    ``outer`` too.

    The nesting invariant of the fault subsystem.  Checked on the
    *faulty-resource union* (dead nodes, and switch sites faulty in
    either class): a single uniform draw per site is partitioned into
    stuck-open / stuck-closed bands, so a growing rate can migrate a
    site between classes while the faulty set itself only ever grows.
    Both maps must belong to the same fabric — node ids are not
    comparable otherwise.

    Nesting is what makes degradation curves monotone in *hardware*
    rather than sampling noise: `run_defect_sweep` holds each
    campaign's seed constant while the rate grows, and the mission
    simulator (`repro.faults.mission`) holds it constant while
    accumulated actuations grow; either way the fixed per-site uniform
    draw is compared against monotonically growing probabilities, so
    every later fault set contains every earlier one.
    """
    if inner.fabric_key != outer.fabric_key:
        raise ValueError(
            "cannot compare defect maps across fabrics (node ids are not "
            "portable); nesting is only defined per fabric key")

    def faulty_sites(m: FabricDefectMap) -> FrozenSet[Switch]:
        return frozenset(m.stuck_open_switches) | frozenset(
            m.stuck_closed_switches)

    return (set(inner.stuck_open_nodes) <= set(outer.stuck_open_nodes)
            and faulty_sites(inner) <= faulty_sites(outer))


def chain_is_nested(maps: Sequence[FabricDefectMap]) -> bool:
    """True when every consecutive pair of ``maps`` nests in order."""
    return all(defect_maps_nested(a, b) for a, b in zip(maps, maps[1:]))


def resolve_defects(defects: object, ir: FabricIR) -> Optional[FabricDefectMap]:
    """Coerce a flow-layer ``defects`` argument to a map for ``ir``.

    Accepted forms:

    * ``None`` — no defects;
    * a `FabricDefectMap` — validated against ``ir`` (raises when the
      fabric key differs: node ids do not survive a width change);
    * anything with ``for_fabric(ir)`` (a `FaultCampaign`) — sampled
      for this concrete fabric, deterministically;
    * a callable ``ir -> FabricDefectMap``.

    This is what lets `find_min_channel_width` and the repair ladder's
    W+2 retries carry one defect *model* across many concrete fabrics.
    """
    if defects is None:
        return None
    if isinstance(defects, FabricDefectMap):
        defects.validate_against(ir)
        return defects
    for_fabric = getattr(defects, "for_fabric", None)
    if callable(for_fabric):
        produced = for_fabric(ir)
    elif callable(defects):
        produced = defects(ir)
    else:
        raise TypeError(
            f"defects must be a FabricDefectMap, a campaign with "
            f".for_fabric(ir), or a callable, got {type(defects).__name__}")
    if not isinstance(produced, FabricDefectMap):
        raise TypeError(
            f"defect provider returned {type(produced).__name__}, "
            "expected FabricDefectMap")
    produced.validate_against(ir)
    return produced
