"""Fabric-level built-in self-test.

Generalises the crossbar two-pattern BIST (`crossbar.bist.run_bist`)
from one array to a whole `FabricIR`: program every switch site,
observe which conduct (misses are stuck-open); erase everything,
observe which still conduct (survivors are stuck-closed).  The output
is the same `FabricDefectMap` a `FaultCampaign` produces — with the
same digest for the same fault set, because `source` is excluded from
the hash — so detection and injection close the loop:

    campaign.for_fabric(ir).digest == run_fabric_bist(ir, truth).digest

Two observation backends:

* **fast** (default): the two patterns evaluated directly on the
  site arrays.  Under pattern A (all programmed) a site conducts iff
  its relay is not stuck-open and neither endpoint wire is dead; under
  pattern B (erased) it conducts iff stuck-closed.  A node-level fault
  manifests as *every* incident site reading open, which is exactly
  how the localiser classifies it back.
* **electrical** (``electrical=True``): sites are grouped per owning
  tile, laid out as real `RelayCrossbar` arrays with `FaultyRelay`
  devices injected from the truth map, and each array runs the actual
  half-select `run_bist` — terminal behaviour only.  Quadratic in
  array size; meant for small fabrics to validate the fast path
  against physical programming, not for production sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..fabric import FabricIR
from ..obs import get_registry, get_tracer
from .campaign import switch_sites
from .defects import FabricDefectMap, fabric_key_of

Site = Tuple[int, int]


def _classify(
    sites: np.ndarray,
    conducts_programmed: np.ndarray,
    conducts_erased: np.ndarray,
    num_nodes: int,
) -> FabricDefectMap:
    """Turn two observed patterns into a defect map.

    A node whose *every* incident site failed to conduct under the
    programmed pattern is reported as a dead node (and its sites are
    then not double-reported as individual stuck-opens, matching how
    campaigns encode node faults).
    """
    open_sites = ~conducts_programmed & ~conducts_erased
    closed_sites = conducts_erased

    incident = np.zeros(num_nodes, dtype=np.int64)
    open_incident = np.zeros(num_nodes, dtype=np.int64)
    for axis in (0, 1):
        np.add.at(incident, sites[:, axis], 1)
        np.add.at(open_incident, sites[:, axis], open_sites.astype(np.int64))
    dead_nodes = (incident > 0) & (open_incident == incident)

    site_has_dead_end = dead_nodes[sites[:, 0]] | dead_nodes[sites[:, 1]]
    switch_open = open_sites & ~site_has_dead_end
    return FabricDefectMap(
        fabric_key="",  # caller fills
        num_nodes=num_nodes,
        stuck_open_nodes=tuple(np.flatnonzero(dead_nodes).tolist()),
        stuck_open_switches=tuple(map(tuple, sites[switch_open].tolist())),
        stuck_closed_switches=tuple(map(tuple, sites[closed_sites].tolist())),
        source="bist",
    )


def _observe_fast(
    sites: np.ndarray, truth: FabricDefectMap
) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate both test patterns analytically on the site arrays."""
    open_set = set(truth.stuck_open_switches)
    closed_set = set(truth.stuck_closed_switches)
    dead = np.zeros(truth.num_nodes, dtype=bool)
    if truth.stuck_open_nodes:
        dead[list(truth.stuck_open_nodes)] = True

    n = len(sites)
    stuck_open = np.zeros(n, dtype=bool)
    stuck_closed = np.zeros(n, dtype=bool)
    for i, (lo, hi) in enumerate(map(tuple, sites.tolist())):
        if (lo, hi) in open_set:
            stuck_open[i] = True
        elif (lo, hi) in closed_set:
            stuck_closed[i] = True
    endpoint_dead = dead[sites[:, 0]] | dead[sites[:, 1]]
    conducts_programmed = ~stuck_open & ~endpoint_dead
    conducts_erased = stuck_closed
    return conducts_programmed, conducts_erased


def _observe_electrical(
    ir: FabricIR, sites: np.ndarray, truth: FabricDefectMap, max_rows: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the real crossbar BIST per tile group.

    Sites are attributed to the tile of their lower-id node and packed
    row-major into arrays of at most ``max_rows`` rows; each array gets
    `FaultyRelay` devices injected at the crosspoints the truth map
    marks faulty (a dead node faults every incident site), then the
    half-select two-pattern `run_bist` reads them back electrically.
    """
    from ..config.bitstream import _owning_tile
    from ..crossbar.bist import StuckMode, faulty_crossbar, run_bist
    from ..crossbar.halfselect import solve_voltages
    from ..nemrelay import AIR, POLYSILICON, SCALED_22NM_DEVICE
    from ..nemrelay.electrostatics import ActuationModel

    model = ActuationModel(POLYSILICON, SCALED_22NM_DEVICE, AIR)
    voltages = solve_voltages([model.pull_in], [model.pull_out])
    if voltages is None:  # pragma: no cover - nominal device is feasible
        raise RuntimeError("nominal device has no valid programming window")

    open_set = set(truth.stuck_open_switches)
    closed_set = set(truth.stuck_closed_switches)
    dead = set(truth.stuck_open_nodes)

    groups: Dict[Tuple[int, int], List[int]] = {}
    site_list = [tuple(s) for s in sites.tolist()]
    for i, (lo, hi) in enumerate(site_list):
        groups.setdefault(_owning_tile(ir, lo, hi), []).append(i)

    conducts_programmed = np.zeros(len(sites), dtype=bool)
    conducts_erased = np.zeros(len(sites), dtype=bool)
    for tile in sorted(groups):
        members = groups[tile]
        rows = min(max_rows, len(members))
        cols = -(-len(members) // rows)
        faults: Dict[Tuple[int, int], StuckMode] = {}
        coord_of: Dict[int, Tuple[int, int]] = {}
        for j, idx in enumerate(members):
            coord = (j % rows, j // rows)
            coord_of[idx] = coord
            lo, hi = site_list[idx]
            if (lo, hi) in closed_set:
                faults[coord] = StuckMode.STUCK_CLOSED
            elif (lo, hi) in open_set or lo in dead or hi in dead:
                faults[coord] = StuckMode.STUCK_OPEN
        # Padding crosspoints (beyond len(members)) are healthy relays;
        # they program and erase cleanly and are ignored on read-back.
        outcome = run_bist(faulty_crossbar(rows, cols, model, faults), voltages)
        for idx in members:
            coord = coord_of[idx]
            conducts_programmed[idx] = coord not in outcome.stuck_open
            conducts_erased[idx] = coord in outcome.stuck_closed
    return conducts_programmed, conducts_erased


def run_fabric_bist(
    ir: FabricIR,
    truth: FabricDefectMap,
    electrical: bool = False,
    max_rows: int = 32,
) -> FabricDefectMap:
    """Locate the faults of ``truth`` by testing, not by peeking.

    Args:
        ir: Fabric under test.
        truth: The physical fault state (what a campaign injected).
            The BIST only observes conduction patterns derived from
            it — the returned map is *reconstructed*, and equals the
            truth map's digest when the reconstruction is exact.
        electrical: Use the per-tile `RelayCrossbar` half-select
            backend instead of the analytic pattern evaluation.
        max_rows: Electrical backend array height limit.
    """
    truth.validate_against(ir)
    with get_tracer().span(
        "faults.bist", electrical=electrical, faults=truth.total
    ) as span:
        sites = switch_sites(ir)
        if electrical:
            programmed, erased = _observe_electrical(ir, sites, truth, max_rows)
        else:
            programmed, erased = _observe_fast(sites, truth)
        located = _classify(sites, programmed, erased, ir.num_nodes)
        located = FabricDefectMap(
            fabric_key=fabric_key_of(ir),
            num_nodes=located.num_nodes,
            stuck_open_nodes=located.stuck_open_nodes,
            stuck_open_switches=located.stuck_open_switches,
            stuck_closed_switches=located.stuck_closed_switches,
            source="bist",
        )
        span.set_many(
            sites=len(sites),
            located=located.total,
            digest=located.digest[:12],
            matches_truth=located.digest == truth.digest,
        )
        get_registry().counter("faults.bist_runs").inc()
        return located
