"""Seeded fault campaigns over `FabricIR` routing switches.

A `FaultCampaign` is an immutable fault *model*: it does not hold any
node ids, only a seed plus physical parameters.  Calling
`for_fabric(ir)` samples a concrete `FabricDefectMap` for one fabric,
bit-reproducibly from ``(campaign.seed, fabric_key_of(ir))`` — the
same campaign resampled on a wider fabric (the repair ladder's W+2
retries, a `find_min_channel_width` probe) yields a deterministic but
different map, because the id space changed.

Three sampling modes, all drawing over *undirected switch sites*
(a bidir fabric stores two directed CSR edges per physical relay;
one relay fails as a unit):

* ``uniform`` — i.i.d. stuck-open / stuck-closed rates.  The workhorse
  for yield curves.
* ``variation`` — Vpi/Vpo Monte-Carlo tails (`nemrelay.variation`,
  paper Fig. 6): a relay whose Vpi exceeds the population's
  full-select voltage can never be programmed (stuck-open); one whose
  Vpo exceeds Vhold, or whose Vpi sits below the half-select level,
  violates the Fig. 4 window and latches (stuck-closed).
* ``aging`` — Weibull contact wear (`nemrelay.reliability`): each
  site accumulates actuation cycles (baseline reconfigurations, plus
  signal toggling scaled by netlist switching activity when a
  programmed bitstream is supplied) and fails stuck-open with its
  Weibull failure probability.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Optional, Tuple

import numpy as np

from ..fabric import FabricIR
from ..obs import get_registry, get_tracer
from .defects import FabricDefectMap, fabric_key_of

#: Non-programmable CSR edges (SwitchKind.NONE) are not fault sites.
_SWITCH_NONE = 0

CAMPAIGN_MODES = ("uniform", "variation", "aging")


def _seed_sequence(seed: int, fabric_key: str) -> np.random.SeedSequence:
    """SeedSequence from (campaign seed, fabric key) — the determinism
    contract: same pair, same entropy stream, any process."""
    key_int = int.from_bytes(
        hashlib.sha256(fabric_key.encode("utf-8")).digest()[:8], "big")
    return np.random.SeedSequence([int(seed), key_int])


def switch_sites(ir: FabricIR) -> np.ndarray:
    """Unique undirected programmable switch sites of ``ir``.

    Returns an int64 ``(n_sites, 2)`` array of ``(lo, hi)`` node pairs
    in ascending lexicographic order — the canonical site enumeration
    every campaign mode draws over (order stability is part of the
    determinism contract).
    """
    if ir.num_edges == 0:
        return np.zeros((0, 2), dtype=np.int64)
    sources = np.repeat(
        np.arange(ir.num_nodes, dtype=np.int64), np.diff(ir.edge_offsets))
    targets = ir.edge_targets.astype(np.int64)
    programmable = ir.edge_switch != _SWITCH_NONE
    lo = np.minimum(sources[programmable], targets[programmable])
    hi = np.maximum(sources[programmable], targets[programmable])
    encoded = np.unique(lo * np.int64(ir.num_nodes) + hi)
    return np.column_stack(
        (encoded // ir.num_nodes, encoded % ir.num_nodes))


def site_actuations(
    sites: np.ndarray,
    bitstream: Optional[object] = None,
    activities: Optional[Dict[str, float]] = None,
    cycles: float = 0.0,
    reconfigurations: float = 0.0,
) -> np.ndarray:
    """Per-site actuation counts for one wear interval.

    Every site sees the ``reconfigurations`` programming baseline; a
    site carrying a net in ``bitstream`` additionally toggles
    ``cycles`` times scaled by that net's switching activity
    (``activities``, defaulting to `DEFAULT_INPUT_ACTIVITY`).

    This is the one wear-accounting code path: `FaultCampaign` calls
    it for single-shot aging maps, and the mission simulator
    (`repro.faults.mission`) calls it per epoch, *summing* the returned
    increments into a cumulative per-site accumulator that is handed
    back through ``for_fabric(..., actuations=...)`` — which is what
    makes mission fault sets nest across epochs.
    """
    from ..power.activity import DEFAULT_INPUT_ACTIVITY

    actuations = np.full(len(sites), float(reconfigurations))
    if bitstream is not None and cycles > 0 and len(sites):
        site_index = {
            (int(lo), int(hi)): i for i, (lo, hi) in enumerate(sites)}
        for (u, v), net in getattr(bitstream, "net_of_edge", {}).items():
            idx = site_index.get((min(u, v), max(u, v)))
            if idx is None:
                continue
            density = DEFAULT_INPUT_ACTIVITY
            if activities is not None:
                density = activities.get(net, DEFAULT_INPUT_ACTIVITY)
            actuations[idx] += cycles * density
    return actuations


@dataclasses.dataclass(frozen=True)
class FaultCampaign:
    """A seeded, fabric-independent fault model.

    Attributes:
        seed: Campaign seed; with the fabric key this fully determines
            the sampled defect map.
        mode: ``uniform`` | ``variation`` | ``aging``.
        stuck_open_rate / stuck_closed_rate: Per-site probabilities
            (``uniform`` mode).
        sigma_scale: Multiplier on the Fig. 6 variation sigmas
            (``variation`` mode); >1 widens the tails.
        population: Monte-Carlo population size (``variation`` mode).
        cycles: Signal-toggle cycles each routed site accumulates
            (``aging`` mode), scaled by net switching activity.
        reconfigurations: Baseline programming actuations every site
            has seen regardless of use (``aging`` mode).
        eta / beta: Weibull endurance parameters (``aging`` mode).
    """

    seed: int = 0
    mode: str = "uniform"
    stuck_open_rate: float = 0.01
    stuck_closed_rate: float = 0.0
    sigma_scale: float = 1.0
    population: int = 200
    cycles: float = 0.0
    reconfigurations: float = 500.0
    eta: float = 1e9
    beta: float = 1.6

    def __post_init__(self) -> None:
        if self.mode not in CAMPAIGN_MODES:
            raise ValueError(
                f"mode must be one of {CAMPAIGN_MODES}, got {self.mode!r}")
        for name in ("stuck_open_rate", "stuck_closed_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.stuck_open_rate + self.stuck_closed_rate > 1.0:
            raise ValueError("stuck_open_rate + stuck_closed_rate > 1")
        if self.sigma_scale <= 0:
            raise ValueError("sigma_scale must be positive")
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if self.cycles < 0 or self.reconfigurations < 0:
            raise ValueError("cycles and reconfigurations must be >= 0")
        if self.eta <= 0 or self.beta <= 0:
            raise ValueError("eta and beta must be positive")

    # ------------------------------------------------------------------

    def for_fabric(
        self,
        ir: FabricIR,
        bitstream: Optional[object] = None,
        activities: Optional[Dict[str, float]] = None,
        actuations: Optional[np.ndarray] = None,
    ) -> FabricDefectMap:
        """Sample this campaign's defect map for one concrete fabric.

        Args:
            ir: The fabric to sample on.
            bitstream: Optional `config.bitstream.Bitstream`; in
                ``aging`` mode, sites carrying a net additionally age
                by ``cycles`` scaled by that net's switching activity.
            activities: Net name -> transition density (from
                `power.activity.estimate_activities`); defaults to
                `DEFAULT_INPUT_ACTIVITY` per routed net.
            actuations: Precomputed per-site actuation counts
                (``aging`` mode only), in `switch_sites` order.  When
                given, ``bitstream``/``activities``/``cycles``/
                ``reconfigurations`` are ignored for wear accounting:
                the caller owns the accumulator.  The mission
                simulator uses this to accumulate wear incrementally
                across epochs; because the underlying uniform draw is
                fixed by ``(seed, fabric key)``, monotonically growing
                actuations produce monotonically nested fault sets.
        """
        key = fabric_key_of(ir)
        with get_tracer().span(
            "faults.campaign", mode=self.mode, seed=self.seed
        ) as span:
            sites = switch_sites(ir)
            if actuations is not None:
                if self.mode != "aging":
                    raise ValueError(
                        "precomputed actuations only apply to aging mode, "
                        f"not {self.mode!r}")
                actuations = np.asarray(actuations, dtype=float)
                if actuations.shape != (len(sites),):
                    raise ValueError(
                        f"actuations shape {actuations.shape} != "
                        f"({len(sites)},) — one count per switch site")
                if len(sites) and float(actuations.min()) < 0:
                    raise ValueError("actuations must be >= 0")
            rng = np.random.default_rng(_seed_sequence(self.seed, key))
            if self.mode == "uniform":
                open_mask, closed_mask = self._sample_uniform(rng, len(sites))
            elif self.mode == "variation":
                open_mask, closed_mask = self._sample_variation(rng, len(sites))
            else:
                if actuations is None:
                    actuations = site_actuations(
                        sites, bitstream, activities,
                        cycles=self.cycles,
                        reconfigurations=self.reconfigurations)
                open_mask = self._sample_aging(rng, sites, actuations)
                closed_mask = np.zeros(len(sites), dtype=bool)
            defect_map = FabricDefectMap(
                fabric_key=key,
                num_nodes=ir.num_nodes,
                stuck_open_switches=tuple(
                    map(tuple, sites[open_mask].tolist())),
                stuck_closed_switches=tuple(
                    map(tuple, sites[closed_mask].tolist())),
                source="campaign",
            )
            span.set_many(
                sites=len(sites),
                stuck_open=int(open_mask.sum()),
                stuck_closed=int(closed_mask.sum()),
                digest=defect_map.digest[:12],
            )
            registry = get_registry()
            registry.counter("faults.campaigns").inc()
            registry.counter("faults.stuck_open").inc(int(open_mask.sum()))
            registry.counter("faults.stuck_closed").inc(int(closed_mask.sum()))
            return defect_map

    # -- mode samplers -------------------------------------------------

    def _sample_uniform(
        self, rng: np.random.Generator, n_sites: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        draw = rng.random(n_sites)
        open_mask = draw < self.stuck_open_rate
        closed_mask = (~open_mask) & (
            draw < self.stuck_open_rate + self.stuck_closed_rate)
        return open_mask, closed_mask

    def _sample_variation(
        self, rng: np.random.Generator, n_sites: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fault rates from the Vpi/Vpo variation tails (paper Fig. 6).

        A relay population is Monte-Carlo'd at ``sigma_scale`` times
        the Fig. 6 process spread and the *nominal-population*
        programming voltages are applied to it: devices in the upper
        Vpi tail never pull in at full-select (stuck-open); devices
        whose Vpo rose past Vhold, or whose Vpi fell below the
        half-select level, latch closed (stiction / half-select upset).
        """
        from ..nemrelay import (
            AIR, FIG6_VARIATION_SPEC, POLYSILICON, SCALED_22NM_DEVICE,
        )
        from ..nemrelay.variation import VariationSpec, sample_population
        from ..crossbar.halfselect import solve_voltages

        base = FIG6_VARIATION_SPEC
        spec = VariationSpec(
            sigma_length=base.sigma_length * self.sigma_scale,
            sigma_thickness=base.sigma_thickness * self.sigma_scale,
            sigma_gap=base.sigma_gap * self.sigma_scale,
            sigma_contact_gap=base.sigma_contact_gap * self.sigma_scale,
            sigma_adhesion=base.sigma_adhesion * self.sigma_scale,
            mean_adhesion=base.mean_adhesion,
        )
        nominal = sample_population(
            POLYSILICON, SCALED_22NM_DEVICE, AIR,
            count=self.population, spec=base, seed=self.seed,
        )
        voltages = solve_voltages(
            list(nominal.vpi), list(nominal.vpo))
        scaled = sample_population(
            POLYSILICON, SCALED_22NM_DEVICE, AIR,
            count=self.population, spec=spec, seed=self.seed + 1,
        )
        if voltages is None:
            # Nominal process already infeasible: every site fails to
            # program deterministically one way or the other.
            p_open, p_closed = 1.0, 0.0
        else:
            vpi, vpo = scaled.vpi, scaled.vpo
            p_open = float(np.mean(vpi >= voltages.full_select))
            p_closed = float(np.mean(
                (vpo >= voltages.v_hold) | (vpi <= voltages.half_select)))
            p_closed = min(p_closed, 1.0 - p_open)
        draw = rng.random(n_sites)
        open_mask = draw < p_open
        closed_mask = (~open_mask) & (draw < p_open + p_closed)
        return open_mask, closed_mask

    def _sample_aging(
        self,
        rng: np.random.Generator,
        sites: np.ndarray,
        actuations: np.ndarray,
    ) -> np.ndarray:
        """Weibull wear-out from per-site actuation counts."""
        from ..nemrelay.reliability import WeibullEndurance

        endurance = WeibullEndurance(eta=self.eta, beta=self.beta)
        # Most sites share the baseline count; evaluate the Weibull CDF
        # once per distinct value rather than per site.
        unique, inverse = np.unique(actuations, return_inverse=True)
        p_unique = np.array(
            [endurance.failure_probability(float(a)) for a in unique])
        p_fail = p_unique[inverse]
        return rng.random(len(sites)) < p_fail

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FaultCampaign":
        return cls(**{
            f.name: doc[f.name]
            for f in dataclasses.fields(cls) if f.name in doc
        })
