"""Persistent content-addressed result store (`repro.store`).

Caches `repro.runner.JobResult`s on disk keyed by *(job spec, code
digest)* so that repeated executions of the same work — a re-run
batch, a second client asking the service for the same route — cost
one store lookup instead of a P&R run.  Distinct from
`repro.obs.store`, the sqlite *telemetry* warehouse: this package
stores results, that one stores measurements.

See `result_store.ResultStore` for the layout, integrity and GC
story, and DESIGN.md Sec. 5h for the protocol.
"""

from .result_store import (
    STORE_SCHEMA_VERSION,
    GCResult,
    ResultStore,
    StoreStats,
)

__all__ = [
    "GCResult",
    "ResultStore",
    "STORE_SCHEMA_VERSION",
    "StoreStats",
]
