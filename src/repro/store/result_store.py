"""On-disk content-addressed store for batch job results.

Layout (everything under one root directory)::

    <root>/
      index/<ee>/<entry>.json   entry = sha256(spec.store_key(code))
      blobs/<bb>/<blob>.blob    blob  = sha256 of the blob's bytes
      quarantine/               corrupt files moved here, never deleted

The *index* maps a ``(job spec, code digest)`` identity to a blob; the
*blobs* area holds the canonical-JSON `JobResult` documents, named by
the sha256 of their own bytes (content-addressed: identical results
from different specs share one blob).  Both areas shard by the first
two hex digits so no directory grows unboundedly.

Guarantees, in the order they matter:

*Atomic publication.*  Every file lands via write-to-``*.tmp`` +
``os.replace`` — a reader never observes a torn entry or blob, and
concurrent writers of the same content are idempotent (last replace
wins with identical bytes).

*Integrity on read.*  A `get` re-hashes the blob bytes and compares
against the content address, re-derives the result's ``qor`` digest,
and checks the entry's recorded job key against the requesting spec.
Any mismatch — a flipped byte, a truncated index row, a digest that
does not add up — quarantines the offending files and reports a
*miss*: the caller transparently recomputes, and the bad entry can
never serve a wrong answer again.

*Bounded size.*  `gc` evicts least-recently-used entries (recency =
entry-file mtime, bumped on every hit) down to ``max_bytes`` /
``max_entries``, then drops blobs no surviving entry references.

The store never raises out of `get`/`put` for storage-level problems;
corruption and races degrade to misses.  Counters (``store.hits``,
``store.misses``, ...) land in the current `repro.obs` metrics
registry so cache behaviour shows up in run telemetry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from typing import Dict, List, Optional, Tuple

from ..obs import get_logger, get_registry, kv
from ..runner.spec import JobResult, JobSpec, code_digest, digest_of

_log = get_logger("store.result")

#: Bump when the entry document shape changes incompatibly.  Entries
#: with a different schema read as misses (and are quarantined), so an
#: old store directory degrades gracefully under new code.
STORE_SCHEMA_VERSION = 1

#: Statuses whose results are deterministic functions of the spec and
#: therefore cacheable.  Errors, timeouts, crashes and stalls are
#: environmental — caching them would replay transient failures.
CACHEABLE_STATUSES = ("ok", "unroutable", "unrepairable")


@dataclasses.dataclass
class StoreStats:
    """Per-`ResultStore`-instance counters (process-local)."""

    hits: int = 0
    misses: int = 0
    published: int = 0
    quarantined: int = 0
    evicted: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class GCResult:
    """Outcome of one `ResultStore.gc` pass."""

    kept_entries: int
    evicted_entries: int
    dropped_blobs: int
    bytes_before: int
    bytes_after: int

    def to_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


def _sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write_bytes(path: str, data: bytes) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


class ResultStore:
    """A result cache rooted at one directory (see module docstring).

    Args:
        root: Store directory (created on first use).
        code: Code digest forming the second key axis; defaults to
            `repro.runner.spec.code_digest()` — the current checkout.
        max_bytes / max_entries: Default bounds for `gc` (and for the
            auto-GC `run_batch` triggers after publishing).
    """

    def __init__(self, root: str, code: Optional[str] = None,
                 max_bytes: Optional[int] = None,
                 max_entries: Optional[int] = None) -> None:
        self.root = root
        self.code = code if code is not None else code_digest()
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.stats = StoreStats()

    def to_doc(self) -> Dict[str, object]:
        """A plain-JSON handle for crossing a process boundary.

        Carries the resolved code digest, so a spawned worker opens
        the *same* key space without re-deriving it (and without one
        ``git rev-parse`` per worker).
        """
        return {"root": self.root, "code": self.code,
                "max_bytes": self.max_bytes, "max_entries": self.max_entries}

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "ResultStore":
        return cls(str(doc["root"]), code=str(doc["code"]),
                   max_bytes=doc.get("max_bytes"),
                   max_entries=doc.get("max_entries"))

    # -- paths ---------------------------------------------------------

    def _index_dir(self) -> str:
        return os.path.join(self.root, "index")

    def _blob_dir(self) -> str:
        return os.path.join(self.root, "blobs")

    def _quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    def entry_id(self, spec: JobSpec) -> str:
        return _sha256_hex(spec.store_key(self.code).encode("utf-8"))

    def _entry_path(self, entry: str) -> str:
        return os.path.join(self._index_dir(), entry[:2], f"{entry}.json")

    def _blob_path(self, blob: str) -> str:
        return os.path.join(self._blob_dir(), blob[:2], f"{blob}.blob")

    # -- quarantine ----------------------------------------------------

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a corrupt file out of the serving areas; never raises."""
        try:
            os.makedirs(self._quarantine_dir(), exist_ok=True)
            base = os.path.basename(path)
            dest = os.path.join(self._quarantine_dir(), base)
            n = 0
            while os.path.exists(dest):
                n += 1
                dest = os.path.join(self._quarantine_dir(), f"{base}.{n}")
            os.replace(path, dest)
        except OSError:
            try:
                os.remove(path)
            except OSError:
                return
        self.stats.quarantined += 1
        get_registry().counter("store.quarantined").inc()
        _log.info("store quarantined %s", kv(file=os.path.basename(path),
                                             reason=reason))

    def quarantined(self) -> List[str]:
        """Names of quarantined files (diagnostics, tests)."""
        try:
            return sorted(os.listdir(self._quarantine_dir()))
        except OSError:
            return []

    # -- read path -----------------------------------------------------

    def get(self, spec: JobSpec) -> Optional[JobResult]:
        """The cached `JobResult` for ``spec`` under this code digest,
        fully re-verified — or None (a miss) for any absence, mismatch
        or corruption.  A hit bumps the entry's LRU recency."""
        if spec.fault:
            return None
        entry = self.entry_id(spec)
        entry_path = self._entry_path(entry)
        try:
            with open(entry_path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return self._miss()
        try:
            doc = json.loads(raw.decode("utf-8"))
            if not isinstance(doc, dict):
                raise ValueError("entry is not an object")
        except (ValueError, UnicodeDecodeError):
            # A truncated or torn index row: quarantine, recompute.
            self._quarantine(entry_path, "unreadable entry")
            return self._miss()
        if doc.get("schema") != STORE_SCHEMA_VERSION:
            self._quarantine(entry_path, f"schema {doc.get('schema')!r}")
            return self._miss()
        if doc.get("job_key") != spec.key or doc.get("code") != self.code:
            # A sha256 collision in practice means a corrupted entry
            # body that still parses; either way it must not serve.
            self._quarantine(entry_path, "key mismatch")
            return self._miss()
        blob = doc.get("blob")
        if not isinstance(blob, str) or not blob:
            self._quarantine(entry_path, "missing blob reference")
            return self._miss()
        blob_path = self._blob_path(blob)
        try:
            with open(blob_path, "rb") as handle:
                data = handle.read()
        except OSError:
            self._quarantine(entry_path, "blob missing")
            return self._miss()
        if _sha256_hex(data) != blob:
            # Flipped bit in the blob: the content address no longer
            # matches the content.  Quarantine both sides.
            self._quarantine(blob_path, "blob content digest mismatch")
            self._quarantine(entry_path, "entry referencing corrupt blob")
            return self._miss()
        result = self._parse_result(data, spec, entry_path, blob_path)
        if result is None:
            return self._miss()
        try:  # LRU recency: hits refresh the entry's mtime.
            os.utime(entry_path)
        except OSError:
            pass
        self.stats.hits += 1
        get_registry().counter("store.hits").inc()
        return result

    def _parse_result(self, data: bytes, spec: JobSpec, entry_path: str,
                      blob_path: str) -> Optional[JobResult]:
        try:
            doc = json.loads(data.decode("utf-8"))
            result = JobResult.from_dict(doc)
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            self._quarantine(blob_path, "blob not a JobResult")
            self._quarantine(entry_path, "entry referencing bad blob")
            return None
        if result.key != spec.key:
            self._quarantine(blob_path, "result key mismatch")
            self._quarantine(entry_path, "entry blob for a different job")
            return None
        qor_digest = result.digests.get("qor")
        if qor_digest is not None and qor_digest != digest_of(result.qor):
            # The result's own internal consistency check failed: the
            # QoR scalars no longer hash to their recorded digest, so
            # this can NOT be served as a correct cached answer.
            self._quarantine(blob_path, "qor digest mismatch")
            self._quarantine(entry_path, "entry blob failed digest check")
            return None
        return result

    def _miss(self) -> None:
        self.stats.misses += 1
        get_registry().counter("store.misses").inc()
        return None

    # -- write path ----------------------------------------------------

    def put(self, spec: JobSpec, result: JobResult) -> bool:
        """Publish a result; returns False when it is not cacheable
        (fault-injected spec, non-deterministic status, key mismatch)."""
        if spec.fault or result.status not in CACHEABLE_STATUSES:
            return False
        if result.key != spec.key:
            raise ValueError(
                f"result key {result.key!r} does not match spec {spec.key!r}")
        data = json.dumps(result.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        blob = _sha256_hex(data)
        blob_path = self._blob_path(blob)
        entry = self.entry_id(spec)
        entry_path = self._entry_path(entry)
        entry_doc = {
            "schema": STORE_SCHEMA_VERSION,
            "job_key": spec.key,
            "code": self.code,
            "blob": blob,
            "size": len(data),
            "status": result.status,
            "created_unix": time.time(),
        }
        try:
            os.makedirs(os.path.dirname(blob_path), exist_ok=True)
            os.makedirs(os.path.dirname(entry_path), exist_ok=True)
            if not os.path.exists(blob_path):  # content-addressed: reuse
                _atomic_write_bytes(blob_path, data)
            # The entry is the commit point; written after the blob so
            # a crash between the two never leaves a dangling entry.
            _atomic_write_bytes(
                entry_path,
                json.dumps(entry_doc, sort_keys=True).encode("utf-8"))
        except OSError as exc:
            _log.info("store publish failed %s", kv(job=spec.key, error=str(exc)))
            return False
        self.stats.published += 1
        get_registry().counter("store.published").inc()
        return True

    # -- inventory / GC ------------------------------------------------

    def _scan_entries(self) -> List[Tuple[float, str, Dict[str, object]]]:
        """(mtime, path, doc) per readable entry; unreadable ones are
        quarantined on the spot."""
        rows: List[Tuple[float, str, Dict[str, object]]] = []
        index_dir = self._index_dir()
        try:
            shards = sorted(os.listdir(index_dir))
        except OSError:
            return rows
        for shard in shards:
            shard_dir = os.path.join(index_dir, shard)
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    with open(path, "rb") as handle:
                        doc = json.loads(handle.read().decode("utf-8"))
                    mtime = os.path.getmtime(path)
                except (OSError, ValueError, UnicodeDecodeError):
                    self._quarantine(path, "unreadable entry (scan)")
                    continue
                if isinstance(doc, dict):
                    rows.append((mtime, path, doc))
        return rows

    def _scan_blobs(self) -> Dict[str, Tuple[str, int]]:
        """blob digest -> (path, size) for every blob on disk."""
        blobs: Dict[str, Tuple[str, int]] = {}
        blob_dir = self._blob_dir()
        try:
            shards = sorted(os.listdir(blob_dir))
        except OSError:
            return blobs
        for shard in shards:
            shard_dir = os.path.join(blob_dir, shard)
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            for name in names:
                if not name.endswith(".blob"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    size = os.path.getsize(path)
                except OSError:
                    continue
                blobs[name[:-len(".blob")]] = (path, size)
        return blobs

    def size(self) -> Dict[str, int]:
        """Current inventory: entry/blob counts and total bytes."""
        entries = self._scan_entries()
        blobs = self._scan_blobs()
        entry_bytes = 0
        for _, path, _doc in entries:
            try:
                entry_bytes += os.path.getsize(path)
            except OSError:
                pass
        return {
            "entries": len(entries),
            "blobs": len(blobs),
            "bytes": entry_bytes + sum(size for _, size in blobs.values()),
        }

    def gc(self, max_bytes: Optional[int] = None,
           max_entries: Optional[int] = None) -> GCResult:
        """Evict LRU entries until the store fits the bounds, then drop
        unreferenced blobs.  Bounds default to the constructor's; a GC
        with no bound anywhere only sweeps orphaned blobs."""
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        max_entries = self.max_entries if max_entries is None else max_entries
        entries = self._scan_entries()
        blobs = self._scan_blobs()
        entry_sizes: Dict[str, int] = {}
        for _, path, _doc in entries:
            try:
                entry_sizes[path] = os.path.getsize(path)
            except OSError:
                entry_sizes[path] = 0

        def total_bytes(live) -> int:
            referenced = {doc.get("blob") for _, _, doc in live}
            blob_bytes = sum(size for digest, (_, size) in blobs.items()
                             if digest in referenced)
            return blob_bytes + sum(entry_sizes[p] for _, p, _ in live)

        bytes_before = total_bytes(entries)
        # Newest first; evict from the tail (the least recently used).
        live = sorted(entries, key=lambda row: row[0], reverse=True)
        evicted: List[Tuple[float, str, Dict[str, object]]] = []
        if max_entries is not None:
            while len(live) > max_entries:
                evicted.append(live.pop())
        if max_bytes is not None:
            while live and total_bytes(live) > max_bytes:
                evicted.append(live.pop())
        for _, path, _doc in evicted:
            try:
                os.remove(path)
            except OSError:
                pass
        referenced = {doc.get("blob") for _, _, doc in live}
        dropped_blobs = 0
        for digest, (path, _size) in blobs.items():
            if digest not in referenced:
                try:
                    os.remove(path)
                    dropped_blobs += 1
                except OSError:
                    pass
        self.stats.evicted += len(evicted)
        if evicted or dropped_blobs:
            get_registry().counter("store.evicted").inc(len(evicted))
            _log.info("store gc %s", kv(
                evicted=len(evicted), dropped_blobs=dropped_blobs,
                kept=len(live)))
        return GCResult(
            kept_entries=len(live),
            evicted_entries=len(evicted),
            dropped_blobs=dropped_blobs,
            bytes_before=bytes_before,
            bytes_after=total_bytes(live),
        )
