"""FabricIR: the flat array-backed RR-graph core.

One compact structure-of-arrays representation of the routing fabric
— numpy attribute columns, CSR adjacency, a per-edge switch-kind
table, and tile lookup arrays — built once per ``(ArchParams, nx,
ny)`` and shared (read-only) by the PathFinder router, the timing
analyzer, the bitstream extractor, and the visualisers.

Entry points:

* `FabricIR.build(params, nx, ny)` — array-native construction;
* `get_fabric(params, nx, ny)`     — the keyed process-wide cache the
  flow's channel-width probes go through;
* `as_fabric(graph)`               — coerce legacy `RRGraph` objects
  (conversion memoised per instance) so migrated consumers accept
  both representations.

See DESIGN.md ("FabricIR") for the array layout and migration notes.
"""

from .build import (
    KIND_HWIRE,
    KIND_IPIN,
    KIND_NAMES,
    KIND_OPIN,
    KIND_SINK,
    KIND_SOURCE,
    KIND_VWIRE,
)
from .ir import (
    FabricIR,
    RouterColumns,
    SwitchKind,
    TileLookup,
    as_fabric,
    switch_kind_code,
)
from .cache import FabricCache, fabric_cache, get_fabric

__all__ = [
    "FabricCache",
    "FabricIR",
    "KIND_HWIRE",
    "KIND_IPIN",
    "KIND_NAMES",
    "KIND_OPIN",
    "KIND_SINK",
    "KIND_SOURCE",
    "KIND_VWIRE",
    "RouterColumns",
    "SwitchKind",
    "TileLookup",
    "as_fabric",
    "fabric_cache",
    "get_fabric",
    "switch_kind_code",
]
