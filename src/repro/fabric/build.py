"""Array-native RR-graph construction: the FabricIR backing store.

A faithful port of `repro.arch.rrgraph.RRGraph._build` that emits flat
parallel arrays instead of `RRNode` objects and per-node adjacency
lists.  Node ids, node attributes, and per-source edge order are
identical to the legacy builder (tests/fabric/test_equivalence.py
checks this exhaustively on small grids), so a router run over either
representation takes exactly the same decisions.

The builder keeps the legacy construction's transient dict indexes
(`_wire_at`, `_entry_at`, `_entries_by_corner`) — they exist only
during the build; the finished IR is pure arrays.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..arch.params import ArchParams

#: NodeKind codes, aligned with `repro.arch.rrgraph.NodeKind` member
#: order (SOURCE, SINK, OPIN, IPIN, HWIRE, VWIRE).
KIND_SOURCE, KIND_SINK, KIND_OPIN, KIND_IPIN, KIND_HWIRE, KIND_VWIRE = range(6)

#: Kind code -> NodeKind.value string (for describe()/stats()).
KIND_NAMES = ("source", "sink", "opin", "ipin", "hwire", "vwire")


class RawFabric:
    """Flat build output before CSR finalisation (see `_finalize`)."""

    __slots__ = (
        "params", "nx", "ny",
        "kind", "xs", "ys", "spans", "tracks", "directions",
        "edge_src", "edge_dst", "source_lut", "sink_lut",
    )

    def __init__(self, params: ArchParams, nx: int, ny: int) -> None:
        self.params = params
        self.nx = nx
        self.ny = ny
        self.kind: List[int] = []
        self.xs: List[int] = []
        self.ys: List[int] = []
        self.spans: List[int] = []
        self.tracks: List[int] = []
        self.directions: List[int] = []
        self.edge_src: List[int] = []
        self.edge_dst: List[int] = []
        # Tile (x, y) -> SOURCE / SINK node id, flattened x * ny + y.
        self.source_lut: List[int] = [-1] * (nx * ny)
        self.sink_lut: List[int] = [-1] * (nx * ny)


class _ArrayBuilder:
    """Mirror of the legacy `RRGraph` build over flat lists."""

    def __init__(self, params: ArchParams, nx: int, ny: int) -> None:
        if nx < 1 or ny < 1:
            raise ValueError(f"grid must be at least 1x1, got {nx}x{ny}")
        self.params = params
        self.nx = nx
        self.ny = ny
        self.raw = RawFabric(params, nx, ny)
        self.unidir = params.directionality == "unidir"
        # (is_vertical, channel index, track, position) -> wire node id
        self._wire_at: Dict[Tuple[bool, int, int, int], int] = {}
        # Unidirectional mode: (is_vertical, channel, corner, track) ->
        # the wire ENTERING (driven) at that corner, plus a per-corner
        # list of all entries (same staggering caveats as the legacy
        # builder — see rrgraph.py).
        self._entry_at: Dict[Tuple[bool, int, int, int], int] = {}
        self._entries_by_corner: Dict[Tuple[bool, int, int], List[Tuple[int, int]]] = {}

    # -- primitives --------------------------------------------------------

    def _new_node(
        self, kind: int, x: int, y: int,
        span: int = 1, track: int = 0, direction: int = 0,
    ) -> int:
        raw = self.raw
        node_id = len(raw.kind)
        raw.kind.append(kind)
        raw.xs.append(x)
        raw.ys.append(y)
        raw.spans.append(span)
        raw.tracks.append(track)
        raw.directions.append(direction)
        return node_id

    def _add_edge(self, src: int, dst: int) -> None:
        self.raw.edge_src.append(src)
        self.raw.edge_dst.append(dst)

    # -- construction (line-for-line port of RRGraph._build) ---------------

    def build(self) -> RawFabric:
        self._build_wires()
        self._build_pins()
        self._build_switch_boxes()
        return self.raw

    def _segment_starts(self, track: int, extent: int) -> List[Tuple[int, int]]:
        seg_len = self.params.segment_length
        offset = (track // 2) % seg_len if self.unidir else track % seg_len
        segments: List[Tuple[int, int]] = []
        pos = 0
        if offset > 0:
            head = min(offset, extent)
            segments.append((0, head))
            pos = head
        while pos < extent:
            span = min(seg_len, extent - pos)
            segments.append((pos, span))
            pos += span
        return segments

    def _wire_direction(self, track: int) -> int:
        if not self.unidir:
            return 0
        return 1 if track % 2 == 0 else -1

    def _build_wires(self) -> None:
        w = self.params.channel_width
        for c in range(self.ny + 1):
            for t in range(w):
                direction = self._wire_direction(t)
                for start, span in self._segment_starts(t, self.nx):
                    node = self._new_node(
                        KIND_HWIRE, x=start, y=c, span=span, track=t, direction=direction
                    )
                    for pos in range(start, start + span):
                        self._wire_at[(False, c, t, pos)] = node
                    if direction:
                        entry = start if direction > 0 else start + span
                        self._entry_at[(False, c, entry, t)] = node
                        self._entries_by_corner.setdefault((False, c, entry), []).append((t, node))
        for c in range(self.nx + 1):
            for t in range(w):
                direction = self._wire_direction(t)
                for start, span in self._segment_starts(t, self.ny):
                    node = self._new_node(
                        KIND_VWIRE, x=c, y=start, span=span, track=t, direction=direction
                    )
                    for pos in range(start, start + span):
                        self._wire_at[(True, c, t, pos)] = node
                    if direction:
                        entry = start if direction > 0 else start + span
                        self._entry_at[(True, c, entry, t)] = node
                        self._entries_by_corner.setdefault((True, c, entry), []).append((t, node))

    def _adjacent_channels(self, x: int, y: int) -> List[Tuple[bool, int, int]]:
        return [
            (False, y, x),      # horizontal channel below
            (False, y + 1, x),  # horizontal channel above
            (True, x, y),       # vertical channel left
            (True, x + 1, y),   # vertical channel right
        ]

    def _build_pins(self) -> None:
        p = self.params
        w = p.channel_width
        raw = self.raw
        for x in range(self.nx):
            for y in range(self.ny):
                source = self._new_node(KIND_SOURCE, x, y)
                sink = self._new_node(KIND_SINK, x, y)
                raw.source_lut[x * self.ny + y] = source
                raw.sink_lut[x * self.ny + y] = sink
                channels = self._adjacent_channels(x, y)
                out_stride = max(1, w // p.fc_out_abs)
                in_stride = max(1, w // p.fc_in_abs)
                for pin in range(p.outputs_per_lb):
                    opin = self._new_node(KIND_OPIN, x, y, track=pin)
                    self._add_edge(source, opin)
                    offset = (pin * w) // p.outputs_per_lb + (x + y) % out_stride
                    for j in range(p.fc_out_abs):
                        vertical, chan, pos = channels[(pin + 2 * (j % 2)) % 4]
                        track = (offset + j * out_stride) % w
                        if self.unidir:
                            corner = pos + (j % 2)
                            entries = self._entries_by_corner.get((vertical, chan, corner), [])
                            if not entries:
                                corner = pos + 1 - (j % 2)
                                entries = self._entries_by_corner.get(
                                    (vertical, chan, corner), []
                                )
                            if not entries:
                                continue
                            entry_stride = max(1, len(entries) // max(1, p.fc_out_abs // 2))
                            _t, wire = entries[(pin + j * entry_stride) % len(entries)]
                        else:
                            wire = self._wire_at.get((vertical, chan, track, pos))
                        if wire is not None:
                            self._add_edge(opin, wire)
                for pin in range(p.inputs_per_lb):
                    ipin = self._new_node(KIND_IPIN, x, y, track=pin)
                    self._add_edge(ipin, sink)
                    offset = (pin * w) // p.inputs_per_lb + (x * 2 + y) % in_stride
                    for j in range(p.fc_in_abs):
                        vertical, chan, pos = channels[(pin + 2 * (j % 2)) % 4]
                        track = (offset + j * in_stride) % w
                        wire = self._wire_at.get((vertical, chan, track, pos))
                        if wire is not None:
                            self._add_edge(wire, ipin)

    def _wires_crossing(self, vertical: bool, chan: int, pos: int) -> Dict[int, int]:
        w = self.params.channel_width
        found: Dict[int, int] = {}
        for t in range(w):
            node = self._wire_at.get((vertical, chan, t, pos))
            if node is not None:
                found[t] = node
        return found

    def _build_switch_boxes(self) -> None:
        if self.unidir:
            self._build_switch_boxes_unidir()
        else:
            self._build_switch_boxes_bidir()

    def _build_switch_boxes_unidir(self) -> None:
        p = self.params
        raw = self.raw
        for node_id in range(len(raw.kind)):
            k = raw.kind[node_id]
            if k != KIND_HWIRE and k != KIND_VWIRE:
                continue
            vertical = k == KIND_VWIRE
            chan = raw.xs[node_id] if vertical else raw.ys[node_id]
            start = raw.ys[node_id] if vertical else raw.xs[node_id]
            span = raw.spans[node_id]
            track = raw.tracks[node_id]
            exit_corner = start + span if raw.directions[node_id] > 0 else start
            nxt = self._entry_at.get((vertical, chan, exit_corner, track))
            if nxt is not None and nxt != node_id:
                self._add_edge(node_id, nxt)
            cross_vertical = not vertical
            cross_index = exit_corner
            cross_corner = chan
            if cross_vertical and not (0 <= cross_index <= self.nx):
                continue
            if not cross_vertical and not (0 <= cross_index <= self.ny):
                continue
            entries = self._entries_by_corner.get(
                (cross_vertical, cross_index, cross_corner), []
            )
            if not entries:
                continue
            for i in range(p.fs):
                index = (track + 1 + i * max(1, len(entries) // p.fs)) % len(entries)
                _t, target = entries[index]
                if target != node_id:
                    self._add_edge(node_id, target)

    def _build_switch_boxes_bidir(self) -> None:
        p = self.params
        w = p.channel_width
        raw = self.raw
        seen_pairs = set()

        def connect(a: int, b: int) -> None:
            if a == b:
                return
            key = (a, b) if a < b else (b, a)
            if key in seen_pairs:
                return
            seen_pairs.add(key)
            self._add_edge(a, b)
            self._add_edge(b, a)

        for node_id in range(len(raw.kind)):
            k = raw.kind[node_id]
            if k != KIND_HWIRE and k != KIND_VWIRE:
                continue
            vertical = k == KIND_VWIRE
            chan = raw.xs[node_id] if vertical else raw.ys[node_id]
            start = raw.ys[node_id] if vertical else raw.xs[node_id]
            end = start + raw.spans[node_id] - 1
            track = raw.tracks[node_id]
            nxt = self._wire_at.get((vertical, chan, track, end + 1))
            if nxt is not None:
                connect(node_id, nxt)
            for endpoint, cross_chan in ((start, start), (end, end + 1)):
                if vertical:
                    cross_vertical = False
                    cross_index = cross_chan
                    cross_pos = min(chan, self.nx - 1)
                    if chan == self.nx:
                        cross_pos = self.nx - 1
                else:
                    cross_vertical = True
                    cross_index = cross_chan
                    cross_pos = min(chan, self.ny - 1)
                    if chan == self.ny:
                        cross_pos = self.ny - 1
                candidates = self._wires_crossing(cross_vertical, cross_index, cross_pos)
                if not candidates:
                    continue
                for i in range(p.fs):
                    target_track = (track + i * max(1, w // p.fs)) % w
                    if target_track not in candidates:
                        existing = sorted(candidates)
                        target_track = existing[target_track % len(existing)]
                    connect(node_id, candidates[target_track])


def build_raw(params: ArchParams, nx: int, ny: int) -> RawFabric:
    """Run the array-native build and return the flat lists."""
    return _ArrayBuilder(params, nx, ny).build()


def csr_from_edges(
    num_nodes: int, edge_src: np.ndarray, edge_dst: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """(edge_offsets, edge_targets) from an edge list in emit order.

    The stable sort preserves per-source emit order, so CSR slice
    ``targets[offsets[u]:offsets[u + 1]]`` reproduces the legacy
    adjacency list of ``u`` element-for-element — which the router's
    determinism (heap tie-breaks follow push order) depends on.
    """
    if len(edge_src) == 0:
        return (np.zeros(num_nodes + 1, dtype=np.int64),
                np.zeros(0, dtype=np.int32))
    order = np.argsort(edge_src, kind="stable")
    targets = np.ascontiguousarray(edge_dst[order], dtype=np.int32)
    counts = np.bincount(edge_src, minlength=num_nodes)
    offsets = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, targets
