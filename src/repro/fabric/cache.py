"""Keyed FabricIR cache: one build per (ArchParams, nx, ny).

The channel-width binary search and the evaluation stages route the
same placement repeatedly — at probe widths during the search, then
again at the working width for every variant/STA pass.  Pre-refactor,
each of those calls rebuilt a fresh object graph (`vpr/flow.py`'s
per-probe `RRGraph(...)`); the cache makes a repeat at any previously
seen width free.

`ArchParams` is a frozen dataclass, so `(params, nx, ny)` is directly
hashable.  Cached IRs are immutable and shared: routers keep their
occupancy/history state in router-local arrays.  Hits and misses feed
the `repro.obs` registry (``fabric.cache_hits`` / ``_misses``) and the
per-lookup span, so ``repro report`` shows the win.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Tuple

from ..arch.params import ArchParams
from ..obs import get_registry, get_tracer
from .ir import FabricIR

Key = Tuple[ArchParams, int, int]


class FabricCache:
    """LRU cache of built `FabricIR` instances.

    Args:
        maxsize: Retained IRs; a Wmin binary search touches ~10 widths
            and IRs for scaled workloads are a few MB each, so the
            default holds a whole search.
    """

    def __init__(self, maxsize: int = 16) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Key, FabricIR]" = OrderedDict()
        self._lock = threading.Lock()
        #: Key -> event for an in-flight build (single-flight: one
        #: builder per key, everyone else waits and shares the result).
        self._building: Dict[Key, threading.Event] = {}
        self.hits = 0
        self.misses = 0

    def get(self, params: ArchParams, nx: int, ny: int) -> FabricIR:
        """The IR for this architecture/grid, building on first use.

        Thread-safe: every piece of bookkeeping (LRU order, eviction,
        hit/miss counters) happens under the lock, and concurrent
        misses for the same key coalesce into a single build — the
        batch runner's parent pre-warm may race threaded callers
        without double-building or corrupting the LRU state.
        """
        key = (params, nx, ny)
        registry = get_registry()
        while True:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    registry.counter("fabric.cache_hits").inc()
                    with get_tracer().span(
                        "fabric.cache_lookup", hit=True, nx=nx, ny=ny,
                        channel_width=params.channel_width,
                    ):
                        pass
                    return cached
                pending = self._building.get(key)
                if pending is None:
                    pending = self._building[key] = threading.Event()
                    self.misses += 1
                    registry.counter("fabric.cache_misses").inc()
                    builder = True
                else:
                    builder = False
            if not builder:
                # Another thread is building this key; wait and
                # re-check (the entry may also have been evicted by
                # the time we wake — then the loop elects a builder).
                pending.wait()
                continue
            try:
                with get_tracer().span(
                    "fabric.cache_lookup", hit=False, nx=nx, ny=ny,
                    channel_width=params.channel_width,
                ):
                    ir = FabricIR.build(params, nx, ny)
            except BaseException:
                with self._lock:
                    self._building.pop(key, None)
                pending.set()  # waiters retry; one of them rebuilds
                raise
            with self._lock:
                self._entries[key] = ir
                self._entries.move_to_end(key)
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                registry.gauge("fabric.cache_entries").set(len(self._entries))
                self._building.pop(key, None)
            pending.set()
            return ir

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries), "hits": self.hits,
                    "misses": self.misses}


#: Process-wide cache the flow drives its probes through.
_GLOBAL_CACHE = FabricCache()


def get_fabric(params: ArchParams, nx: int, ny: int) -> FabricIR:
    """Fetch-or-build from the process-wide cache."""
    return _GLOBAL_CACHE.get(params, nx, ny)


def fabric_cache() -> FabricCache:
    """The process-wide cache (inspection / `clear()` in tests)."""
    return _GLOBAL_CACHE
