"""FabricIR: flat array-backed routing-resource graph.

One compact, index-addressed intermediate representation shared by the
router, timing analyzer, bitstream extractor, and visualisers (the
architecture real P&R stacks use — packed routing graphs / flat device
resources).  Per node there is one entry in each structure-of-arrays
column (kind/x/y/span/track/direction); adjacency is CSR
(``edge_offsets`` / ``edge_targets``) with a parallel per-edge
``edge_switch`` table classifying the programmable switch each edge
crosses.

Two constructors:

* `FabricIR.build(params, nx, ny)` — array-native build (no `RRNode`
  objects allocated; see `repro.fabric.build`);
* `FabricIR.from_rrgraph(graph)` — convert an existing legacy
  `RRGraph` (used by `as_fabric` to migrate old call sites).

The IR is immutable once built and safe to share: consumers keep their
mutable state (occupancy, history costs) in their own arrays indexed
by node id.  An `RRGraph`-compatible facade (`nodes`, `adjacency`,
`base_cost`, ...) materialises lazily so legacy call sites keep
working during migration without paying for objects they never touch.
"""

from __future__ import annotations

import dataclasses
import enum
import time
from functools import cached_property
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..arch.params import ArchParams
from ..obs import get_tracer
from .build import (
    KIND_HWIRE,
    KIND_IPIN,
    KIND_NAMES,
    KIND_OPIN,
    KIND_SINK,
    KIND_SOURCE,
    KIND_VWIRE,
    build_raw,
    csr_from_edges,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..arch.rrgraph import RRGraph, RRNode


class SwitchKind(enum.IntEnum):
    """Programmable-switch class of one RR edge.

    ``NONE`` marks hard-wired hops (SOURCE->OPIN fanout through the LB
    output mux, IPIN->SINK collection through the internal crossbar);
    the other three are the relay/pass-transistor switch sites of
    paper Fig. 7: output taps (SB side), wire-wire switch-box joints,
    and input taps (CB side).
    """

    NONE = 0
    OPIN_WIRE = 1
    WIRE_WIRE = 2
    WIRE_IPIN = 3


def switch_kind_code(kind_u: int, kind_v: int) -> int:
    """Classify the switch on edge (u, v) from the endpoint kind codes.

    The single source of truth shared by the bitstream extractor, its
    verify pass, and the timing analyzer (each used to re-derive this
    independently).
    """
    u_wire = kind_u == KIND_HWIRE or kind_u == KIND_VWIRE
    v_wire = kind_v == KIND_HWIRE or kind_v == KIND_VWIRE
    if u_wire:
        if v_wire:
            return SwitchKind.WIRE_WIRE
        if kind_v == KIND_IPIN:
            return SwitchKind.WIRE_IPIN
    elif kind_u == KIND_OPIN and v_wire:
        return SwitchKind.OPIN_WIRE
    return SwitchKind.NONE


def _classify_edges(kind: np.ndarray, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Vectorised `switch_kind_code` over an edge list."""
    ku = kind[src]
    kv = kind[dst]
    u_wire = (ku == KIND_HWIRE) | (ku == KIND_VWIRE)
    v_wire = (kv == KIND_HWIRE) | (kv == KIND_VWIRE)
    switch = np.zeros(len(src), dtype=np.int8)
    switch[(ku == KIND_OPIN) & v_wire] = SwitchKind.OPIN_WIRE
    switch[u_wire & v_wire] = SwitchKind.WIRE_WIRE
    switch[u_wire & (kv == KIND_IPIN)] = SwitchKind.WIRE_IPIN
    return switch


class TileLookup(Mapping[Tuple[int, int], int]):
    """Dict-compatible (x, y) -> node id view over a flat lookup array."""

    __slots__ = ("_table", "_nx", "_ny")

    def __init__(self, table: np.ndarray, nx: int, ny: int) -> None:
        self._table = table
        self._nx = nx
        self._ny = ny

    def __getitem__(self, tile: Tuple[int, int]) -> int:
        x, y = tile
        if not (0 <= x < self._nx and 0 <= y < self._ny):
            raise KeyError(tile)
        node = int(self._table[x * self._ny + y])
        if node < 0:
            raise KeyError(tile)
        return node

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for x in range(self._nx):
            for y in range(self._ny):
                if self._table[x * self._ny + y] >= 0:
                    yield (x, y)

    def __len__(self) -> int:
        return int((self._table >= 0).sum())


@dataclasses.dataclass
class RouterColumns:
    """Writable per-router cost/occupancy state columns.

    Freshly allocated by `FabricIR.router_columns()` so every router
    owns its mutable state while the IR's shared cached views stay
    immutable.  ``static`` starts equal to ``base`` and is refreshed
    to ``base + history`` once per PathFinder iteration.

    Attributes:
        base: float64 congestion base costs (copy of `base_costs`).
        capacity: int32 node capacities.
        occupancy: int32 current net counts, zero-initialised.
        history: float64 accumulated PathFinder history costs.
        static: float64 ``base + history`` scratch column.
    """

    base: np.ndarray
    capacity: np.ndarray
    occupancy: np.ndarray
    history: np.ndarray
    static: np.ndarray


class FabricIR:
    """Structure-of-arrays RR graph over an nx x ny tile grid.

    Attributes:
        params / nx / ny / unidir: Architecture and grid (legacy-
            compatible names).
        kind: int8 node-kind codes (see `repro.fabric.build`).
        xs / ys / spans / tracks: int32 per-node attribute columns.
        directions: int8 per-node wire direction (0 bidir, +1/-1).
        edge_offsets: int64 CSR row pointers (num_nodes + 1).
        edge_targets: int32 CSR targets; the out-edges of ``u`` are
            ``edge_targets[edge_offsets[u]:edge_offsets[u + 1]]`` in
            legacy adjacency order.
        edge_switch: int8 per-edge `SwitchKind`, parallel to
            ``edge_targets``.
        source_table / sink_table: int32 tile lookup arrays (flattened
            x * ny + y -> SOURCE / SINK node id).
        build_stats: Build provenance (wall time, constructor used).
    """

    def __init__(
        self,
        params: ArchParams,
        nx: int,
        ny: int,
        kind: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        spans: np.ndarray,
        tracks: np.ndarray,
        directions: np.ndarray,
        edge_offsets: np.ndarray,
        edge_targets: np.ndarray,
        source_table: np.ndarray,
        sink_table: np.ndarray,
        build_stats: Optional[Dict[str, object]] = None,
    ) -> None:
        self.params = params
        self.nx = nx
        self.ny = ny
        self.unidir = params.directionality == "unidir"
        self.kind = kind
        self.xs = xs
        self.ys = ys
        self.spans = spans
        self.tracks = tracks
        self.directions = directions
        self.edge_offsets = edge_offsets
        self.edge_targets = edge_targets
        self.edge_switch = _classify_edges(
            kind, np.repeat(np.arange(len(kind)), np.diff(edge_offsets)), edge_targets
        ) if len(edge_targets) else np.zeros(0, dtype=np.int8)
        self.source_table = source_table
        self.sink_table = sink_table
        self.build_stats: Dict[str, object] = dict(build_stats or {})

    # -- constructors ------------------------------------------------------

    @classmethod
    def build(cls, params: ArchParams, nx: int, ny: int) -> "FabricIR":
        """Array-native build (no legacy objects allocated)."""
        with get_tracer().span(
            "fabric.build", nx=nx, ny=ny, channel_width=params.channel_width
        ) as span:
            t0 = time.perf_counter()
            raw = build_raw(params, nx, ny)
            n = len(raw.kind)
            edge_src = np.asarray(raw.edge_src, dtype=np.int64)
            edge_dst = np.asarray(raw.edge_dst, dtype=np.int64)
            offsets, targets = csr_from_edges(n, edge_src, edge_dst)
            ir = cls(
                params, nx, ny,
                kind=np.asarray(raw.kind, dtype=np.int8),
                xs=np.asarray(raw.xs, dtype=np.int32),
                ys=np.asarray(raw.ys, dtype=np.int32),
                spans=np.asarray(raw.spans, dtype=np.int32),
                tracks=np.asarray(raw.tracks, dtype=np.int32),
                directions=np.asarray(raw.directions, dtype=np.int8),
                edge_offsets=offsets,
                edge_targets=targets,
                source_table=np.asarray(raw.source_lut, dtype=np.int32),
                sink_table=np.asarray(raw.sink_lut, dtype=np.int32),
            )
            ir.build_stats = {
                "constructor": "build",
                "build_wall_s": time.perf_counter() - t0,
            }
            span.set_many(
                nodes=ir.num_nodes, edges=ir.num_edges,
                memory_bytes=ir.memory_bytes(),
            )
            return ir

    @classmethod
    def from_rrgraph(cls, graph: "RRGraph") -> "FabricIR":
        """Convert a legacy object-graph `RRGraph` (facade migration)."""
        with get_tracer().span(
            "fabric.convert", nx=graph.nx, ny=graph.ny,
            channel_width=graph.params.channel_width,
        ) as span:
            t0 = time.perf_counter()
            n = graph.num_nodes
            nodes = graph.nodes
            kind = np.fromiter(
                (_LEGACY_KIND_CODE[node.kind.value] for node in nodes),
                dtype=np.int8, count=n)
            xs = np.fromiter((node.x for node in nodes), dtype=np.int32, count=n)
            ys = np.fromiter((node.y for node in nodes), dtype=np.int32, count=n)
            spans = np.fromiter((node.span for node in nodes), dtype=np.int32, count=n)
            tracks = np.fromiter((node.track for node in nodes), dtype=np.int32, count=n)
            directions = np.fromiter(
                (node.direction for node in nodes), dtype=np.int8, count=n)
            counts = np.fromiter(
                (len(adj) for adj in graph.adjacency), dtype=np.int64, count=n)
            offsets = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            targets = np.fromiter(
                (v for adj in graph.adjacency for v in adj),
                dtype=np.int32, count=int(offsets[-1]))
            source_table = np.full(graph.nx * graph.ny, -1, dtype=np.int32)
            sink_table = np.full(graph.nx * graph.ny, -1, dtype=np.int32)
            for (x, y), node in graph.source_of.items():
                source_table[x * graph.ny + y] = node
            for (x, y), node in graph.sink_of.items():
                sink_table[x * graph.ny + y] = node
            ir = cls(
                graph.params, graph.nx, graph.ny,
                kind=kind, xs=xs, ys=ys, spans=spans, tracks=tracks,
                directions=directions,
                edge_offsets=offsets, edge_targets=targets,
                source_table=source_table, sink_table=sink_table,
            )
            ir.build_stats = {
                "constructor": "from_rrgraph",
                "build_wall_s": time.perf_counter() - t0,
            }
            span.set_many(nodes=ir.num_nodes, edges=ir.num_edges)
            return ir

    # -- core queries ------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.kind)

    @property
    def num_edges(self) -> int:
        return len(self.edge_targets)

    def neighbors(self, u: int) -> List[int]:
        """Out-neighbors of ``u`` in legacy adjacency order."""
        offsets = self.csr_offsets()
        return self.csr_targets()[offsets[u]:offsets[u + 1]]

    def out_degree(self, u: int) -> int:
        return int(self.edge_offsets[u + 1] - self.edge_offsets[u])

    @cached_property
    def source_of(self) -> TileLookup:
        return TileLookup(self.source_table, self.nx, self.ny)

    @cached_property
    def sink_of(self) -> TileLookup:
        return TileLookup(self.sink_table, self.nx, self.ny)

    def switch_kind_between(self, u: int, v: int) -> SwitchKind:
        """`SwitchKind` of edge (u, v) from the per-edge switch table.

        Falls back to kind-pair classification when (u, v) is not a
        graph edge (callers walking externally-supplied trees).
        """
        lo = int(self.edge_offsets[u])
        hi = int(self.edge_offsets[u + 1])
        targets = self.edge_targets
        for ei in range(lo, hi):
            if targets[ei] == v:
                return SwitchKind(int(self.edge_switch[ei]))
        return SwitchKind(switch_kind_code(int(self.kind[u]), int(self.kind[v])))

    # -- shared derived views (cached; the IR is immutable) ----------------

    @cached_property
    def base_costs(self) -> np.ndarray:
        """PathFinder base costs (float64): wire cost scales with span;
        pins are cheap; sources/sinks free.  Matches the legacy
        `RRGraph.base_cost` bit-for-bit."""
        wire = (self.kind == KIND_HWIRE) | (self.kind == KIND_VWIRE)
        pin = (self.kind == KIND_OPIN) | (self.kind == KIND_IPIN)
        return np.where(wire, self.spans.astype(np.float64),
                        np.where(pin, 0.95, 0.0))

    @cached_property
    def capacities(self) -> np.ndarray:
        """Routing capacities (int64): 1 everywhere except the logical
        SOURCE/SINK collectors."""
        collector = (self.kind == KIND_SOURCE) | (self.kind == KIND_SINK)
        return np.where(collector, 10**9, 1).astype(np.int64)

    def csr_offsets(self) -> List[int]:
        """`edge_offsets` as a plain list (hot-loop form, cached)."""
        cached = self.__dict__.get("_offsets_list")
        if cached is None:
            cached = self.__dict__["_offsets_list"] = self.edge_offsets.tolist()
        return cached

    def csr_targets(self) -> List[int]:
        """`edge_targets` as a plain list (hot-loop form, cached)."""
        cached = self.__dict__.get("_targets_list")
        if cached is None:
            cached = self.__dict__["_targets_list"] = self.edge_targets.tolist()
        return cached

    @cached_property
    def sink_flags(self) -> List[bool]:
        return (self.kind == KIND_SINK).tolist()

    @cached_property
    def source_flags(self) -> List[bool]:
        return (self.kind == KIND_SOURCE).tolist()

    @cached_property
    def wire_spans(self) -> List[int]:
        """Per-node wirelength contribution: span for wires, else 0."""
        wire = (self.kind == KIND_HWIRE) | (self.kind == KIND_VWIRE)
        return np.where(wire, self.spans, 0).tolist()

    @cached_property
    def pos_x(self) -> np.ndarray:
        """A* lookahead x coordinates (float64): horizontal-wire
        midpoints, pin/collector tile columns."""
        half = (self.spans - 1) / 2.0
        px = self.xs.astype(np.float64)
        hmask = self.kind == KIND_HWIRE
        px[hmask] += half[hmask]
        return px

    @cached_property
    def pos_y(self) -> np.ndarray:
        """A* lookahead y coordinates (float64): vertical-wire
        midpoints, pin/collector tile rows."""
        half = (self.spans - 1) / 2.0
        py = self.ys.astype(np.float64)
        vmask = self.kind == KIND_VWIRE
        py[vmask] += half[vmask]
        return py

    @cached_property
    def positions(self) -> List[Tuple[float, float]]:
        """A* lookahead coordinates: wire midpoints, pin/collector
        tiles.  Matches the legacy router's `_pos` bit-for-bit."""
        return list(zip(self.pos_x.tolist(), self.pos_y.tolist()))

    def nodes_of_kind(self, *codes: int) -> np.ndarray:
        """Node ids whose kind is any of ``codes`` (ascending, cached).

        The kernels use this for their admissibility index sets; the
        cache lives on the instance, keyed by the code tuple.
        """
        cache = self.__dict__.setdefault("_kind_index_cache", {})
        hit = cache.get(codes)
        if hit is None:
            mask = np.zeros(self.num_nodes, dtype=bool)
            for code in codes:
                mask |= self.kind == code
            hit = cache[codes] = np.nonzero(mask)[0]
        return hit

    def router_columns(self) -> RouterColumns:
        """Fresh writable router state columns (one set per router).

        Copies are taken from the shared cached views, so the IR stays
        safe to share between concurrent routers.
        """
        base = self.base_costs.copy()
        return RouterColumns(
            base=base,
            capacity=self.capacities.astype(np.int32),
            occupancy=np.zeros(self.num_nodes, dtype=np.int32),
            history=np.zeros(self.num_nodes, dtype=np.float64),
            static=base.copy(),
        )

    # -- stats -------------------------------------------------------------

    def describe(self) -> Dict[str, int]:
        """Legacy-compatible node-kind counts plus the edge total."""
        counts: Dict[str, int] = {}
        bincount = np.bincount(self.kind, minlength=len(KIND_NAMES))
        for code, name in enumerate(KIND_NAMES):
            if bincount[code]:
                counts[name] = int(bincount[code])
        counts["edges"] = self.num_edges
        return counts

    def memory_bytes(self) -> int:
        """Footprint of the core arrays (excludes lazy facade views)."""
        arrays = (
            self.kind, self.xs, self.ys, self.spans, self.tracks,
            self.directions, self.edge_offsets, self.edge_targets,
            self.edge_switch, self.source_table, self.sink_table,
        )
        return int(sum(a.nbytes for a in arrays))

    def stats(self) -> Dict[str, object]:
        """Full IR statistics for ``repro rrgraph --stats``."""
        switch_counts = np.bincount(self.edge_switch, minlength=len(SwitchKind))
        return {
            "grid": [self.nx, self.ny],
            "channel_width": self.params.channel_width,
            "directionality": self.params.directionality,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "nodes_by_kind": {
                name: count for name, count in self.describe().items()
                if name != "edges"
            },
            "edges_by_switch": {
                sk.name.lower(): int(switch_counts[sk]) for sk in SwitchKind
            },
            "memory_bytes": self.memory_bytes(),
            "build": dict(self.build_stats),
        }

    # -- RRGraph-compatible facade (lazy; migration aid) -------------------

    @cached_property
    def nodes(self) -> List["RRNode"]:
        """Legacy `RRNode` list, materialised on first access only."""
        from ..arch.rrgraph import NodeKind, RRNode

        kinds = [NodeKind(KIND_NAMES[code]) for code in range(len(KIND_NAMES))]
        return [
            RRNode(
                id=i, kind=kinds[k], x=x, y=y, span=span, track=track,
                direction=direction,
            )
            for i, (k, x, y, span, track, direction) in enumerate(zip(
                self.kind.tolist(), self.xs.tolist(), self.ys.tolist(),
                self.spans.tolist(), self.tracks.tolist(),
                self.directions.tolist(),
            ))
        ]

    @cached_property
    def adjacency(self) -> List[List[int]]:
        """Legacy adjacency lists, materialised on first access only."""
        offsets = self.csr_offsets()
        targets = self.csr_targets()
        return [
            targets[offsets[u]:offsets[u + 1]] for u in range(self.num_nodes)
        ]

    def node_capacity(self, node: "RRNode") -> int:
        return int(self.capacities[node.id])

    def base_cost(self, node: "RRNode") -> float:
        return float(self.base_costs[node.id])

    def wire_nodes(self) -> List["RRNode"]:
        nodes = self.nodes
        wire = (self.kind == KIND_HWIRE) | (self.kind == KIND_VWIRE)
        return [nodes[i] for i in np.nonzero(wire)[0].tolist()]


#: NodeKind.value string -> kind code (conversion path).
_LEGACY_KIND_CODE = {name: code for code, name in enumerate(KIND_NAMES)}


def as_fabric(graph) -> FabricIR:
    """Coerce a graph (FabricIR or legacy `RRGraph`) to `FabricIR`.

    Legacy graphs are converted once and the IR is memoised on the
    instance, so repeated calls (router + timing + bitstream over the
    same graph) share one conversion.
    """
    if isinstance(graph, FabricIR):
        return graph
    cached = getattr(graph, "_fabric_ir", None)
    if cached is None:
        cached = FabricIR.from_rrgraph(graph)
        graph._fabric_ir = cached
    return cached
