"""Island-style FPGA architecture parameters (paper Table 1).

The paper's architecture (Fig. 7): an array of Logic Blocks (LBs) in a
sea of routing channels; Connection Blocks (CBs) tap channel wires onto
LB input pins, Switch Boxes (SBs) join wire segments and LB outputs to
wires.  `ArchParams` carries Table 1 plus the derived quantities
(LB input pin count, wires per channel per direction, etc.) every
downstream module shares.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class ArchParams:
    """Architecture parameters, defaults = paper Table 1.

    Attributes:
        n: LUTs per LB (cluster size N).
        k: Inputs per LUT (K).
        segment_length: Routing wire length L in tiles.
        fc_in: LB input pin flexibility Fcin (fraction of channel
            wires each input pin can connect to).
        fc_out: LB output pin flexibility Fcout.
        fs: Switch box flexibility Fs (wires each wire can reach at a
            switch point).
        channel_width: Routing channel width W (wires per channel).
            The paper derives W = 118 (Wmin from VPR + 20% low-stress);
            `repro.vpr.flow.find_min_channel_width` recomputes Wmin.
        lb_inputs: LB input pin count I; 0 means the standard cluster
            rule I = (K/2)(N+1) [Betz 99], which fully utilises N
            K-LUTs.
        directionality: "bidir" (the paper's pass-transistor/relay
            fabric — wires conduct both ways) or "unidir" (modern
            single-driver routing: each wire has a direction and is
            entered only at its start).
    """

    n: int = 10
    k: int = 4
    segment_length: int = 4
    fc_in: float = 0.2
    fc_out: float = 0.1
    fs: int = 3
    channel_width: int = 118
    lb_inputs: int = 0
    directionality: str = "bidir"

    def __post_init__(self) -> None:
        if self.n < 1 or self.k < 2:
            raise ValueError(f"need N >= 1 and K >= 2, got N={self.n}, K={self.k}")
        if self.segment_length < 1:
            raise ValueError(f"segment length must be >= 1, got {self.segment_length}")
        if not 0.0 < self.fc_in <= 1.0 or not 0.0 < self.fc_out <= 1.0:
            raise ValueError("Fc values must be in (0, 1]")
        if self.fs < 1:
            raise ValueError(f"Fs must be >= 1, got {self.fs}")
        if self.channel_width < 2:
            raise ValueError(f"channel width must be >= 2, got {self.channel_width}")
        if self.lb_inputs < 0:
            raise ValueError(f"lb_inputs must be >= 0, got {self.lb_inputs}")
        if self.directionality not in ("bidir", "unidir"):
            raise ValueError(
                f"directionality must be 'bidir' or 'unidir', got {self.directionality!r}"
            )

    @property
    def inputs_per_lb(self) -> int:
        """I: LB input pins (Table/cluster rule when not overridden)."""
        if self.lb_inputs > 0:
            return self.lb_inputs
        return (self.k * (self.n + 1)) // 2

    @property
    def outputs_per_lb(self) -> int:
        """The LB exposes one output pin per LUT (paper Sec. 3.1)."""
        return self.n

    @property
    def fc_in_abs(self) -> int:
        """Wires each input pin taps: ceil(Fcin * W), >= 1."""
        return max(1, round(self.fc_in * self.channel_width))

    @property
    def fc_out_abs(self) -> int:
        """Wires each output pin can drive: ceil(Fcout * W), >= 1."""
        return max(1, round(self.fc_out * self.channel_width))

    @property
    def crossbar_inputs(self) -> int:
        """Inputs of the LB-internal full crossbar: I + N feedbacks."""
        return self.inputs_per_lb + self.n

    @property
    def crossbar_outputs(self) -> int:
        """Crossbar outputs: every LUT input pin (N * K)."""
        return self.n * self.k

    def with_channel_width(self, width: int) -> "ArchParams":
        return dataclasses.replace(self, channel_width=width)


#: Paper Table 1 with the paper's derived channel width W = 118.
PAPER_ARCH = ArchParams()
