"""FPGA tile area model (paper Sec. 3.3-3.4).

Follows the VPR / Betz minimum-width-transistor-area (MWTA)
methodology the paper's reference layouts are based on: every circuit
component costs some number of minimum-width transistor areas; a
tile's CMOS area is the inventory-weighted sum; physical area converts
through a per-node MWTA size; and tile pitch is the square root.

CMOS-NEM FPGAs stack the relay crossbars between metal 3 and metal 5
*above* the CMOS (paper Fig. 1), so the tile footprint is

    footprint = max(CMOS area underneath, relay array area above)

— the mechanism behind the paper's 2x footprint reduction.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

from ..circuits.ptm import Technology
from .params import ArchParams
from .tile import TileInventory

#: Layout area of one minimum-width transistor at 90nm in m^2 (Betz's
#: unit, ~0.55 um^2); other nodes scale classically with F^2.
MWTA_90NM_M2 = 0.55e-12


def mwta_area_m2(node_nm: int) -> float:
    """Physical area (m^2) of one MWTA at a technology node."""
    if node_nm <= 0:
        raise ValueError(f"node must be positive, got {node_nm}")
    return MWTA_90NM_M2 * (node_nm / 90.0) ** 2


#: Area of one NEM relay cell in the BEOL stack, including its share of
#: the programming row/column wiring (m^2).  Calibrated so the relay
#: array over a paper-architecture tile makes the stacked footprint
#: about half the CMOS-only tile, the paper's measured layout outcome.
RELAY_CELL_AREA_M2 = 0.20e-12


@dataclasses.dataclass(frozen=True)
class ComponentAreas:
    """Per-instance MWTA costs for every tile component class.

    Buffer entries are per *instance* and provided by the caller
    because they depend on sizing (chains are sized against wire loads
    by `repro.circuits.buffers`).  Switch/SRAM entries default to the
    standard VPR accounting.
    """

    lb_input_buffer: float
    lb_output_buffer: float
    wire_buffer: float
    routing_switch: float = 2.5   # width-4 pass transistor w/ diffusion sharing
    crossbar_switch: float = 1.0  # min-width crosspoint pass transistor
    sram_bit: float = 6.0
    lut_logic: float = 40.0       # mux tree + input drivers of one K-LUT
    ff: float = 20.0
    output_mux: float = 4.0
    clock_buffer: float = 30.0

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ValueError(f"{field.name} must be non-negative")


@dataclasses.dataclass(frozen=True)
class AreaBreakdown:
    """Tile area accounting.

    Attributes:
        cmos_by_component: MWTA per component class (CMOS layer only).
        relay_count: NEM relays stacked above this tile (0 for
            CMOS-only).
        node_nm: Technology node for physical conversion.
    """

    cmos_by_component: Dict[str, float]
    relay_count: int
    node_nm: int

    @property
    def cmos_mwta(self) -> float:
        return sum(self.cmos_by_component.values())

    @property
    def cmos_area_m2(self) -> float:
        return self.cmos_mwta * mwta_area_m2(self.node_nm)

    @property
    def relay_area_m2(self) -> float:
        return self.relay_count * RELAY_CELL_AREA_M2 * (self.node_nm / 22.0) ** 2

    @property
    def footprint_m2(self) -> float:
        """Stacked footprint: CMOS under-layer vs relay array above."""
        return max(self.cmos_area_m2, self.relay_area_m2)

    @property
    def tile_pitch_m(self) -> float:
        return math.sqrt(self.footprint_m2)

    @property
    def limited_by_relays(self) -> bool:
        return self.relay_area_m2 > self.cmos_area_m2


def tile_area(
    inventory: TileInventory,
    areas: ComponentAreas,
    tech: Technology,
    *,
    switches_are_relays: bool = False,
    crossbar_is_relays: bool = False,
    include_lb_input_buffers: bool = True,
    include_lb_output_buffers: bool = True,
) -> AreaBreakdown:
    """Compute a tile's area breakdown for one FPGA variant.

    Args:
        inventory: Component counts (from `arch.tile.build_inventory`).
        areas: Per-instance MWTA costs.
        tech: Technology (node) for the physical conversion.
        switches_are_relays: CB/SB switches and their SRAM move to the
            relay stack (CMOS cost 0, relay count grows).
        crossbar_is_relays: Same for the LB-internal crossbar.
        include_lb_*_buffers: False removes them (the paper's
            technique).
    """
    inv = inventory
    cmos: Dict[str, float] = {}
    relay_count = 0

    if include_lb_input_buffers:
        cmos["lb_input_buffers"] = inv.lb_input_buffers * areas.lb_input_buffer
    if include_lb_output_buffers:
        cmos["lb_output_buffers"] = inv.lb_output_buffers * areas.lb_output_buffer
    cmos["wire_buffers"] = inv.wire_buffers * areas.wire_buffer

    if switches_are_relays:
        relay_count += inv.routing_switches
    else:
        cmos["routing_switches"] = inv.routing_switches * areas.routing_switch
        cmos["routing_sram"] = inv.routing_sram_bits * areas.sram_bit

    if crossbar_is_relays:
        relay_count += inv.crossbar_switches
    else:
        cmos["crossbar_switches"] = inv.crossbar_switches * areas.crossbar_switch
        cmos["crossbar_sram"] = inv.crossbar_sram_bits * areas.sram_bit

    cmos["lut_logic"] = inv.lut_count * areas.lut_logic
    cmos["lut_sram"] = inv.lut_sram_bits * areas.sram_bit
    cmos["ffs"] = inv.ff_count * areas.ff
    cmos["output_muxes"] = inv.output_mux_count * areas.output_mux
    cmos["clock"] = inv.clock_buffers * areas.clock_buffer

    return AreaBreakdown(cmos_by_component=cmos, relay_count=relay_count, node_nm=tech.node_nm)


def segment_wire_length(params: ArchParams, tile_pitch_m: float) -> float:
    """Physical length (m) of one L-tile routing segment."""
    if tile_pitch_m <= 0:
        raise ValueError(f"tile pitch must be positive, got {tile_pitch_m}")
    return params.segment_length * tile_pitch_m


def local_wire_length(params: ArchParams, tile_pitch_m: float) -> float:
    """Representative LB-internal wire length (m): half the pitch.

    Used for the loads LB input/output buffers drive (local
    interconnect + crossbar wiring, paper Sec. 3.1).
    """
    if tile_pitch_m <= 0:
        raise ValueError(f"tile pitch must be positive, got {tile_pitch_m}")
    return 0.5 * tile_pitch_m
