"""FPGA tile composition: component inventory per tile.

An FPGA decomposes into repeating tiles of one LB + one SB + two CBs
(paper Fig. 7a).  `TileInventory` counts every circuit component in
one tile as a function of the architecture parameters — the common
input of the area model (`arch.area`) and the power model
(`repro.power`), so both always agree on what is inside a tile.

Component classes mirror the paper's Fig. 9 breakdown categories:
routing buffers (LB input / LB output / wire buffers), routing pass
transistors, routing SRAMs, LUTs, FFs, and the clock network.
"""

from __future__ import annotations

import dataclasses
import math

from .params import ArchParams


@dataclasses.dataclass(frozen=True)
class TileInventory:
    """Per-tile component counts.

    Attributes:
        lut_count: K-LUTs per tile (N).
        ff_count: Flip-flops per tile (N, one per LUT).
        lb_input_buffers: LB input pin buffers (I).
        lb_output_buffers: LB output buffers (N).
        wire_buffers: Segment-wire drivers; one per wire segment
            starting in this tile, both channel directions: 2 W / L.
        cb_switches: Connection-block switches: I pins tapping
            Fcin*W wires each, plus output-pin taps N * Fcout*W.
        sb_switches: Switch-box wire-wire switches: per tile, 2 W / L
            segments each with Fs switches at two endpoints, each
            switch shared between two wires: 2 * (2 W / L) * Fs / 2.
        crossbar_switches: LB-internal crossbar cross-points:
            (I + N) x (N K) full crossbar (paper Fig. 7b).
        routing_sram_bits: Configuration bits controlling CB + SB
            switches (one per switch).
        crossbar_sram_bits: Configuration bits of the internal
            crossbar (one per cross-point).
        lut_sram_bits: LUT truth-table bits: N * 2^K.
        output_mux_count: 2:1 comb/registered output muxes (N).
        clock_buffers: Clock tree buffers per tile.
    """

    lut_count: int
    ff_count: int
    lb_input_buffers: int
    lb_output_buffers: int
    wire_buffers: int
    cb_switches: int
    sb_switches: int
    crossbar_switches: int
    routing_sram_bits: int
    crossbar_sram_bits: int
    lut_sram_bits: int
    output_mux_count: int
    clock_buffers: int

    @property
    def routing_switches(self) -> int:
        """All programmable routing switches outside the LB."""
        return self.cb_switches + self.sb_switches

    @property
    def routing_buffer_count(self) -> int:
        """All 'routing buffers' in the paper's collective sense."""
        return self.lb_input_buffers + self.lb_output_buffers + self.wire_buffers


def build_inventory(params: ArchParams) -> TileInventory:
    """Count the components of one tile for the given architecture."""
    w = params.channel_width
    seg = params.segment_length
    i_pins = params.inputs_per_lb
    n = params.n

    wire_segments_per_tile = max(1, math.ceil(2 * w / seg))
    cb_switches = i_pins * params.fc_in_abs + n * params.fc_out_abs
    sb_switches = wire_segments_per_tile * params.fs
    crossbar_switches = params.crossbar_inputs * params.crossbar_outputs

    return TileInventory(
        lut_count=n,
        ff_count=n,
        lb_input_buffers=i_pins,
        lb_output_buffers=n,
        wire_buffers=wire_segments_per_tile,
        cb_switches=cb_switches,
        sb_switches=sb_switches,
        crossbar_switches=crossbar_switches,
        routing_sram_bits=cb_switches + sb_switches,
        crossbar_sram_bits=crossbar_switches,
        lut_sram_bits=n * 2**params.k,
        output_mux_count=n,
        clock_buffers=2,
    )


def grid_size_for(params: ArchParams, num_lbs: int, utilization: float = 1.0) -> int:
    """Side of the square tile grid hosting ``num_lbs`` logic blocks.

    ``utilization`` < 1 reserves spare LBs (VPR packs into the minimal
    square by default; the paper's flow does the same).
    """
    if num_lbs < 1:
        raise ValueError(f"num_lbs must be >= 1, got {num_lbs}")
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization must be in (0, 1], got {utilization}")
    return max(1, math.ceil(math.sqrt(num_lbs / utilization)))
