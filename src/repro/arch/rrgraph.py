"""Routing-resource (RR) graph for the island-style architecture.

The graph the PathFinder router negotiates over.  Node kinds:

* ``SOURCE``/``SINK`` — logical net endpoints per LB (pins of one LB
  are logically equivalent through the internal crossbar, so one
  SOURCE fans out to all OPINs and all IPINs converge on one SINK);
* ``OPIN``/``IPIN`` — physical LB pins, distributed round-robin over
  the four adjacent channels;
* ``HWIRE``/``VWIRE`` — channel wire segments of length L tiles with
  per-track staggered starting points.

Edge kinds follow paper Fig. 7: OPIN -> wire (Fcout, via SB), wire <->
wire (Fs at segment endpoints, plus collinear continuation), wire ->
IPIN (Fcin via CB).  Wires are bidirectional (pass-transistor or relay
switches conduct both ways), so wire-wire edges appear in both
directions.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional, Tuple

from .params import ArchParams


class NodeKind(enum.Enum):
    SOURCE = "source"
    SINK = "sink"
    OPIN = "opin"
    IPIN = "ipin"
    HWIRE = "hwire"
    VWIRE = "vwire"


@dataclasses.dataclass
class RRNode:
    """One routing resource.

    Attributes:
        id: Dense integer id (index into the graph arrays).
        kind: Node kind.
        x, y: Tile coordinate (for pins/source/sink) or channel
            coordinate (for wires: the channel index and span start).
        span: Tiles covered by a wire segment (1 for pins).
        track: Channel track for wires, pin index for pins.
        direction: 0 for bidirectional wires and pins; +1/-1 for
            unidirectional wires driven at their low/high end.
    """

    id: int
    kind: NodeKind
    x: int
    y: int
    span: int = 1
    track: int = 0
    direction: int = 0


class RRGraph:
    """Routing-resource graph over an nx x ny tile grid.

    Args:
        params: Architecture parameters (W, L, Fc, Fs...).
        nx, ny: Grid dimensions in tiles.

    Attributes:
        nodes: All RR nodes, indexed by id.
        adjacency: Directed adjacency lists (node id -> node ids).
        source_of / sink_of: (x, y) tile -> SOURCE / SINK node id.
    """

    def __init__(self, params: ArchParams, nx: int, ny: int) -> None:
        if nx < 1 or ny < 1:
            raise ValueError(f"grid must be at least 1x1, got {nx}x{ny}")
        self.params = params
        self.nx = nx
        self.ny = ny
        self.nodes: List[RRNode] = []
        self.adjacency: List[List[int]] = []
        self.source_of: Dict[Tuple[int, int], int] = {}
        self.sink_of: Dict[Tuple[int, int], int] = {}
        # (is_vertical, channel index, track, position) -> wire node id
        self._wire_at: Dict[Tuple[bool, int, int, int], int] = {}
        # Unidirectional mode: (is_vertical, channel, corner, track) ->
        # the wire ENTERING (driven) at that corner, plus a per-corner
        # list of all entries (with L-tile staggering only ~W/L tracks
        # enter at any one corner, so fixed-track lookups mostly miss).
        self._entry_at: Dict[Tuple[bool, int, int, int], int] = {}
        self._entries_by_corner: Dict[Tuple[bool, int, int], List[Tuple[int, int]]] = {}
        self.unidir = params.directionality == "unidir"
        self._build()

    # -- construction -----------------------------------------------------

    def _new_node(
        self,
        kind: NodeKind,
        x: int,
        y: int,
        span: int = 1,
        track: int = 0,
        direction: int = 0,
    ) -> int:
        node_id = len(self.nodes)
        self.nodes.append(
            RRNode(id=node_id, kind=kind, x=x, y=y, span=span, track=track, direction=direction)
        )
        self.adjacency.append([])
        return node_id

    def _add_edge(self, src: int, dst: int) -> None:
        self.adjacency[src].append(dst)

    def _build(self) -> None:
        self._build_wires()
        self._build_pins()
        self._build_switch_boxes()

    def _segment_starts(self, track: int, extent: int) -> List[Tuple[int, int]]:
        """(start, span) segments tiling a channel of ``extent`` tiles,
        staggered by track so segment joints spread across the fabric.

        Unidirectional fabrics stagger by track *pair*: the INC/DEC
        wires of a pair share joints, so every joint corner hosts
        entries of both directions (all four turn combinations stay
        routable)."""
        seg_len = self.params.segment_length
        offset = (track // 2) % seg_len if self.unidir else track % seg_len
        segments: List[Tuple[int, int]] = []
        pos = 0
        if offset > 0:
            head = min(offset, extent)
            segments.append((0, head))
            pos = head
        while pos < extent:
            span = min(seg_len, extent - pos)
            segments.append((pos, span))
            pos += span
        return segments

    def _wire_direction(self, track: int) -> int:
        """Unidirectional fabrics alternate direction by track parity;
        bidirectional wires carry direction 0."""
        if not self.unidir:
            return 0
        return 1 if track % 2 == 0 else -1

    def _build_wires(self) -> None:
        w = self.params.channel_width
        # Horizontal channels: index c in 0..ny (channel c sits below
        # tile row c; row ny is the top edge), extent nx tiles.
        for c in range(self.ny + 1):
            for t in range(w):
                direction = self._wire_direction(t)
                for start, span in self._segment_starts(t, self.nx):
                    node = self._new_node(
                        NodeKind.HWIRE, x=start, y=c, span=span, track=t, direction=direction
                    )
                    for pos in range(start, start + span):
                        self._wire_at[(False, c, t, pos)] = node
                    if direction:
                        entry = start if direction > 0 else start + span
                        self._entry_at[(False, c, entry, t)] = node
                        self._entries_by_corner.setdefault((False, c, entry), []).append((t, node))
        # Vertical channels: index c in 0..nx, extent ny tiles.
        for c in range(self.nx + 1):
            for t in range(w):
                direction = self._wire_direction(t)
                for start, span in self._segment_starts(t, self.ny):
                    node = self._new_node(
                        NodeKind.VWIRE, x=c, y=start, span=span, track=t, direction=direction
                    )
                    for pos in range(start, start + span):
                        self._wire_at[(True, c, t, pos)] = node
                    if direction:
                        entry = start if direction > 0 else start + span
                        self._entry_at[(True, c, entry, t)] = node
                        self._entries_by_corner.setdefault((True, c, entry), []).append((t, node))

    def _adjacent_channels(self, x: int, y: int) -> List[Tuple[bool, int, int]]:
        """The four channels bordering tile (x, y):
        (is_vertical, channel index, position along channel)."""
        return [
            (False, y, x),      # horizontal channel below
            (False, y + 1, x),  # horizontal channel above
            (True, x, y),       # vertical channel left
            (True, x + 1, y),   # vertical channel right
        ]

    def _build_pins(self) -> None:
        p = self.params
        w = p.channel_width
        for x in range(self.nx):
            for y in range(self.ny):
                source = self._new_node(NodeKind.SOURCE, x, y)
                sink = self._new_node(NodeKind.SINK, x, y)
                self.source_of[(x, y)] = source
                self.sink_of[(x, y)] = sink
                channels = self._adjacent_channels(x, y)
                # Fc patterns: stride spreads each pin's taps across the
                # channel; the per-pin offset walks through all track
                # residues so collectively every track is reachable
                # (a stride-aligned offset would strand most tracks).
                out_stride = max(1, w // p.fc_out_abs)
                in_stride = max(1, w // p.fc_in_abs)
                for pin in range(p.outputs_per_lb):
                    opin = self._new_node(NodeKind.OPIN, x, y, track=pin)
                    self._add_edge(source, opin)
                    # Taps alternate between the pin's side and the
                    # opposite side (pins reach two channels), doubling
                    # escape diversity at the same switch count.
                    offset = (pin * w) // p.outputs_per_lb + (x + y) % out_stride
                    for j in range(p.fc_out_abs):
                        vertical, chan, pos = channels[(pin + 2 * (j % 2)) % 4]
                        track = (offset + j * out_stride) % w
                        if self.unidir:
                            # Single-driver wires are entered at their
                            # start only: tap among the wires whose
                            # entry corner borders this tile (both
                            # directions exit the tile's two corners).
                            # Taps stride across the whole entry list so
                            # different pins reach disjoint-ish wire
                            # sets (a sliding window would make sibling
                            # pins' taps overlap almost completely).
                            corner = pos + (j % 2)
                            entries = self._entries_by_corner.get((vertical, chan, corner), [])
                            if not entries:
                                # Degenerate staggering: with W < 2L
                                # the track pairs cannot cover every
                                # offset, leaving corners with no entry
                                # points (e.g. corner 4 at W=8, L=5).
                                # Fall back to the tile's other corner
                                # so no tile is left driverless.
                                corner = pos + 1 - (j % 2)
                                entries = self._entries_by_corner.get(
                                    (vertical, chan, corner), []
                                )
                            if not entries:
                                continue
                            entry_stride = max(1, len(entries) // max(1, p.fc_out_abs // 2))
                            _t, wire = entries[(pin + j * entry_stride) % len(entries)]
                        else:
                            wire = self._wire_at.get((vertical, chan, track, pos))
                        if wire is not None:
                            self._add_edge(opin, wire)
                for pin in range(p.inputs_per_lb):
                    ipin = self._new_node(NodeKind.IPIN, x, y, track=pin)
                    self._add_edge(ipin, sink)
                    offset = (pin * w) // p.inputs_per_lb + (x * 2 + y) % in_stride
                    for j in range(p.fc_in_abs):
                        vertical, chan, pos = channels[(pin + 2 * (j % 2)) % 4]
                        track = (offset + j * in_stride) % w
                        wire = self._wire_at.get((vertical, chan, track, pos))
                        if wire is not None:
                            self._add_edge(wire, ipin)

    def _wires_crossing(self, vertical: bool, chan: int, pos: int) -> Dict[int, int]:
        """track -> wire id for all tracks of a channel at a position."""
        w = self.params.channel_width
        found: Dict[int, int] = {}
        for t in range(w):
            node = self._wire_at.get((vertical, chan, t, pos))
            if node is not None:
                found[t] = node
        return found

    def _build_switch_boxes(self) -> None:
        if self.unidir:
            self._build_switch_boxes_unidir()
        else:
            self._build_switch_boxes_bidir()

    def _build_switch_boxes_unidir(self) -> None:
        """Single-driver switch pattern: a wire's exit corner feeds the
        entry muxes of crossing-channel wires (Fs of them) and the next
        collinear wire on its track."""
        p = self.params
        w = p.channel_width
        for node in self.nodes:
            if node.kind not in (NodeKind.HWIRE, NodeKind.VWIRE):
                continue
            vertical = node.kind is NodeKind.VWIRE
            chan = node.x if vertical else node.y
            start = node.y if vertical else node.x
            exit_corner = start + node.span if node.direction > 0 else start
            # Collinear continuation (same track, same direction).
            nxt = self._entry_at.get((vertical, chan, exit_corner, node.track))
            if nxt is not None and nxt != node.id:
                self._add_edge(node.id, nxt)
            # Crossing-channel targets entering at the junction.  A
            # horizontal wire in row `chan` exiting at column corner c
            # meets vertical channel c at row corner `chan` (and vice
            # versa).
            cross_vertical = not vertical
            cross_index = exit_corner
            cross_corner = chan
            if cross_vertical and not (0 <= cross_index <= self.nx):
                continue
            if not cross_vertical and not (0 <= cross_index <= self.ny):
                continue
            entries = self._entries_by_corner.get(
                (cross_vertical, cross_index, cross_corner), []
            )
            if not entries:
                continue
            # Mix target directions: if every crossing flipped
            # direction, the fabric would decompose into two
            # disconnected diagonal flows (right+down and left+up) and
            # e.g. a down-then-left turn would be impossible.  The
            # entry list interleaves both directions (track parity),
            # so an odd index stride visits both.
            for i in range(p.fs):
                index = (node.track + 1 + i * max(1, len(entries) // p.fs)) % len(entries)
                _t, target = entries[index]
                if target != node.id:
                    self._add_edge(node.id, target)

    def _build_switch_boxes_bidir(self) -> None:
        """Wire-wire switches at segment endpoints (Fs per endpoint),
        plus collinear continuation to the next segment on the track."""
        p = self.params
        w = p.channel_width
        seen_pairs = set()

        def connect(a: int, b: int) -> None:
            if a == b:
                return
            key = (min(a, b), max(a, b))
            if key in seen_pairs:
                return
            seen_pairs.add(key)
            self._add_edge(a, b)
            self._add_edge(b, a)

        for node in self.nodes:
            if node.kind not in (NodeKind.HWIRE, NodeKind.VWIRE):
                continue
            vertical = node.kind is NodeKind.VWIRE
            chan = node.x if vertical else node.y
            start = node.y if vertical else node.x
            end = start + node.span - 1
            # Collinear continuation on the same track.
            nxt = self._wire_at.get((vertical, chan, node.track, end + 1))
            if nxt is not None:
                connect(node.id, nxt)
            # Crossing connections at both segment endpoints.  A
            # horizontal wire spanning tiles [start, end] of channel
            # row `chan` meets vertical channels start and end + 1; the
            # crossing position in a vertical channel x = c is
            # min(chan, ny - 1) etc.  Fs tracks per endpoint, Wilton-ish
            # modulo pattern.
            for endpoint, cross_chan in ((start, start), (end, end + 1)):
                if vertical:
                    # Crossing horizontal channels are rows cross_chan
                    # (a VWIRE covering tiles [start, end] of column
                    # chan meets HWIRE rows start..end+1; endpoints only).
                    cross_vertical = False
                    cross_index = cross_chan
                    cross_pos = min(chan, self.nx - 1)
                    if chan == self.nx:
                        cross_pos = self.nx - 1
                else:
                    cross_vertical = True
                    cross_index = cross_chan
                    cross_pos = min(chan, self.ny - 1)
                    if chan == self.ny:
                        cross_pos = self.ny - 1
                candidates = self._wires_crossing(cross_vertical, cross_index, cross_pos)
                if not candidates:
                    continue
                for i in range(p.fs):
                    target_track = (node.track + i * max(1, w // p.fs)) % w
                    # Fall back to the nearest existing track.
                    if target_track not in candidates:
                        existing = sorted(candidates)
                        target_track = existing[target_track % len(existing)]
                    connect(node.id, candidates[target_track])

    # -- queries -----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(adj) for adj in self.adjacency)

    def wire_nodes(self) -> List[RRNode]:
        return [n for n in self.nodes if n.kind in (NodeKind.HWIRE, NodeKind.VWIRE)]

    def node_capacity(self, node: RRNode) -> int:
        """Routing capacity: 1 for wires and pins, unbounded for the
        logical SOURCE/SINK collectors."""
        if node.kind in (NodeKind.SOURCE, NodeKind.SINK):
            return 10**9
        return 1

    def base_cost(self, node: RRNode) -> float:
        """PathFinder base cost: wire cost scales with span; pins are
        cheap; sinks free."""
        if node.kind in (NodeKind.HWIRE, NodeKind.VWIRE):
            return float(node.span)
        if node.kind in (NodeKind.OPIN, NodeKind.IPIN):
            return 0.95
        return 0.0

    def describe(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node.kind.value] = counts.get(node.kind.value, 0) + 1
        counts["edges"] = self.num_edges
        return counts
