"""Island-style FPGA architecture substrate (paper Sec. 3.1, Fig. 7).

Architecture parameters (Table 1), per-tile component inventories, the
routing-resource graph the router negotiates over, and the
minimum-width-transistor-area model with NEM relay stacking.
"""

from .params import ArchParams, PAPER_ARCH
from .tile import TileInventory, build_inventory, grid_size_for
from .rrgraph import NodeKind, RRGraph, RRNode
from .area import (
    AreaBreakdown,
    ComponentAreas,
    MWTA_90NM_M2,
    RELAY_CELL_AREA_M2,
    local_wire_length,
    mwta_area_m2,
    segment_wire_length,
    tile_area,
)

__all__ = [
    "ArchParams",
    "AreaBreakdown",
    "ComponentAreas",
    "MWTA_90NM_M2",
    "NodeKind",
    "PAPER_ARCH",
    "RELAY_CELL_AREA_M2",
    "RRGraph",
    "RRNode",
    "TileInventory",
    "build_inventory",
    "grid_size_for",
    "local_wire_length",
    "mwta_area_m2",
    "segment_wire_length",
    "tile_area",
]
