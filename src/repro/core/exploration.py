"""Architecture exploration for CMOS-NEM FPGAs (paper future work).

The paper's closing future-work item is the "exploration of new FPGA
architectures that utilize unique properties of NEM relays".  Two
levers stand out once switches live in the BEOL stack and cost no
CMOS area:

* **segment length** — with no Vt drop and tiny off-state loading,
  longer (or shorter) segments re-balance differently than in CMOS;
  `sweep_segment_length` maps the L trade-off for both fabrics.
* **connection flexibility** — extra relay taps are nearly free in
  CMOS area (they do grow the relay array), so Fcin/Fcout can rise to
  cut the required channel width; `sweep_connection_flexibility`
  quantifies Wmin and the relay-array cost against Fc.

Both sweeps run the real pack/place/route flow per architecture point.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..arch.params import ArchParams
from ..arch.tile import build_inventory
from ..circuits.ptm import PTM_22NM, Technology
from ..netlist.core import Netlist
from ..vpr.flow import FlowResult, find_min_channel_width, low_stress_width
from ..vpr.pack import pack
from ..vpr.place import place
from ..vpr.route import route_design
from .evaluate import evaluate_design
from .variants import baseline_variant, optimized_nem_variant


@dataclasses.dataclass
class ArchPoint:
    """One explored architecture point.

    Attributes:
        params: The architecture evaluated (channel width = the
            derived low-stress W for this point).
        wmin: Minimum routable channel width for the circuit.
        wirelength: Routed wirelength in tile-spans at the final W.
        baseline_critical_path / nem_critical_path: STA results (s).
        nem_leakage_reduction / nem_dynamic_reduction: Power ratios at
            the baseline's clock.
        relay_count_per_tile: NEM relays a tile's switches require.
    """

    params: ArchParams
    wmin: int
    wirelength: int
    baseline_critical_path: float
    nem_critical_path: float
    nem_leakage_reduction: float
    nem_dynamic_reduction: float
    relay_count_per_tile: int


def _evaluate_point(
    netlist: Netlist,
    params: ArchParams,
    seed: int,
    downsize: float,
    tech: Technology,
) -> ArchPoint:
    clustered = pack(netlist, params)
    placement = place(clustered, seed=seed)
    wmin, _result, _graph = find_min_channel_width(placement, params, start=8)
    final = params.with_channel_width(low_stress_width(wmin))
    routing, graph = route_design(placement, final)
    if not routing.success:
        # Rare near-threshold miss: pad the channel a little further.
        final = params.with_channel_width(low_stress_width(wmin) + 4)
        routing, graph = route_design(placement, final)
    flow = FlowResult(
        netlist=netlist, clustered=clustered, placement=placement,
        routing=routing, graph=graph, channel_width=final.channel_width,
    )
    base = evaluate_design(flow, baseline_variant(final, tech))
    nem = evaluate_design(
        flow, optimized_nem_variant(final, downsize, tech), frequency=base.frequency
    )
    inventory = build_inventory(final)
    return ArchPoint(
        params=final,
        wmin=wmin,
        wirelength=routing.wirelength,
        baseline_critical_path=base.critical_path,
        nem_critical_path=nem.critical_path,
        nem_leakage_reduction=base.total_leakage / nem.total_leakage,
        nem_dynamic_reduction=base.total_dynamic / nem.total_dynamic,
        relay_count_per_tile=inventory.routing_switches + inventory.crossbar_switches,
    )


def sweep_segment_length(
    netlist: Netlist,
    base_params: ArchParams,
    lengths: Sequence[int] = (1, 2, 4, 8),
    seed: int = 1,
    downsize: float = 8.0,
    tech: Technology = PTM_22NM,
) -> List[ArchPoint]:
    """Architecture sweep over routing segment length L.

    Returns one `ArchPoint` per L (each with its own derived W).
    """
    if not lengths:
        raise ValueError("need at least one segment length")
    points = []
    for length in lengths:
        params = dataclasses.replace(base_params, segment_length=length)
        points.append(_evaluate_point(netlist, params, seed, downsize, tech))
    return points


def sweep_connection_flexibility(
    netlist: Netlist,
    base_params: ArchParams,
    fc_in_values: Sequence[float] = (0.1, 0.2, 0.4, 0.6),
    seed: int = 1,
    downsize: float = 8.0,
    tech: Technology = PTM_22NM,
) -> List[ArchPoint]:
    """Architecture sweep over input-pin flexibility Fcin.

    Richer CB connectivity is nearly free in CMOS area for a relay
    fabric (taps are BEOL relays), and cuts the channel width the
    router needs; the relay-array count per tile records the cost side.
    """
    if not fc_in_values:
        raise ValueError("need at least one Fc value")
    points = []
    for fc_in in fc_in_values:
        params = dataclasses.replace(base_params, fc_in=fc_in)
        points.append(_evaluate_point(netlist, params, seed, downsize, tech))
    return points


def format_sweep(points: Sequence[ArchPoint], knob: str) -> str:
    """Text table of an exploration sweep."""
    getters: Dict[str, object] = {
        "segment_length": lambda p: p.params.segment_length,
        "fc_in": lambda p: p.params.fc_in,
    }
    if knob not in getters:
        raise KeyError(f"unknown knob {knob!r}; choose from {sorted(getters)}")
    get = getters[knob]
    lines = [
        f"{knob:>10s} {'Wmin':>6s} {'W':>5s} {'WL':>7s} {'relays/tile':>12s} "
        f"{'base ns':>8s} {'nem ns':>7s} {'leak.red':>9s} {'dyn.red':>8s}"
    ]
    for p in points:
        lines.append(
            f"{get(p)!s:>10s} {p.wmin:6d} {p.params.channel_width:5d} "
            f"{p.wirelength:7d} {p.relay_count_per_tile:12d} "
            f"{p.baseline_critical_path * 1e9:8.2f} {p.nem_critical_path * 1e9:7.2f} "
            f"{p.nem_leakage_reduction:9.2f} {p.nem_dynamic_reduction:8.2f}"
        )
    return "\n".join(lines)
