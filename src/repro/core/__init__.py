"""The paper's contribution: energy-efficient CMOS-NEM FPGA design.

Elaborates CMOS-only and CMOS-NEM FPGA design points (`variants`),
evaluates (delay, dynamic power, leakage, area) per circuit
(`evaluate`), sweeps the selective buffer removal/downsizing technique
into Fig. 12 trade-off curves (`tradeoff`), and reports the headline
comparisons (`report`).
"""

from .variants import (
    CLK_Q_FO4,
    FpgaVariant,
    LUT_DELAY_FO4,
    SETUP_FO4,
    VariantConfig,
    VariantKind,
    baseline_variant,
    naive_nem_variant,
    optimized_nem_variant,
)
from .evaluate import Comparison, DesignPoint, evaluate_design
from .tradeoff import (
    DEFAULT_DOWNSIZE_SWEEP,
    TradeoffCurve,
    TradeoffPoint,
    fig12_series,
    geomean_curve,
    sweep_circuit,
)
from .report import (
    HeadlineSummary,
    PAPER_HEADLINE,
    PAPER_NAIVE,
    format_fig12_table,
    format_headline,
    headline_summary,
)
from .exploration import (
    ArchPoint,
    format_sweep,
    sweep_connection_flexibility,
    sweep_segment_length,
)
from .robustness import RatioStats, SeedStudy, format_study, seed_sweep

__all__ = [
    "ArchPoint",
    "CLK_Q_FO4",
    "Comparison",
    "format_sweep",
    "sweep_connection_flexibility",
    "sweep_segment_length",
    "DEFAULT_DOWNSIZE_SWEEP",
    "DesignPoint",
    "FpgaVariant",
    "HeadlineSummary",
    "LUT_DELAY_FO4",
    "PAPER_HEADLINE",
    "PAPER_NAIVE",
    "RatioStats",
    "SETUP_FO4",
    "SeedStudy",
    "format_study",
    "seed_sweep",
    "TradeoffCurve",
    "TradeoffPoint",
    "VariantConfig",
    "VariantKind",
    "baseline_variant",
    "evaluate_design",
    "fig12_series",
    "format_fig12_table",
    "format_headline",
    "geomean_curve",
    "headline_summary",
    "naive_nem_variant",
    "optimized_nem_variant",
    "sweep_circuit",
]
