"""FPGA design variants: CMOS-only baseline vs CMOS-NEM (paper Sec. 3).

A `FpgaVariant` elaborates one design point from (architecture,
technology, variant configuration) into everything the evaluation
needs: the electrical fabric view for timing, the leakage/dynamic
specs for power, and the tile area/pitch.

Tile geometry is a fixed point: buffer sizes depend on wire loads,
wire loads depend on tile pitch, and pitch depends on buffer (and
switch/SRAM) areas.  `FpgaVariant.solve` iterates pitch -> loads ->
buffer sizing -> areas -> pitch to convergence (a couple of passes).

The three variants of the paper's Sec. 3.4:

* ``CMOS_ONLY``     — NMOS pass switches + SRAM, level-restoring
  buffers everywhere (the baseline).
* ``CMOS_NEM_NAIVE``— relays replace switches + SRAM (stacked), but
  the routing buffers stay (the comparison point showing the
  technique's added value: 1.8x area / 1.3x dynamic / 2x leakage).
* ``CMOS_NEM_OPT``  — the paper's technique: LB input/output buffers
  removed, wire buffers downsized (up to 8x pretend-load reduction).
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Optional

from ..arch.area import (
    AreaBreakdown,
    ComponentAreas,
    local_wire_length,
    segment_wire_length,
    tile_area,
)
from ..arch.params import ArchParams
from ..arch.tile import TileInventory, build_inventory
from ..circuits.buffers import RoutingBuffer, sized_buffer
from ..circuits.ptm import PTM_22NM, Technology
from ..circuits.switches import CmosRoutingSwitch, NemRoutingSwitch
from ..nemrelay.device import SCALED_22NM_CIRCUIT, EquivalentCircuit
from ..power.dynamic import DynamicSpec
from ..power.leakage import LeakageSpec, cmos_switch_leakage, sram_bit_leakage
from ..vpr.timing import FabricElectrical


class VariantKind(enum.Enum):
    CMOS_ONLY = "cmos-only"
    CMOS_NEM_NAIVE = "cmos-nem-naive"
    CMOS_NEM_OPT = "cmos-nem-opt"

    @property
    def uses_relays(self) -> bool:
        return self is not VariantKind.CMOS_ONLY


@dataclasses.dataclass(frozen=True)
class VariantConfig:
    """Configuration of one design point.

    Attributes:
        kind: Variant family.
        wire_buffer_downsize: The paper's pretend-load factor for wire
            buffer redesign (1 = delay-optimal, up to 8); only
            meaningful for CMOS_NEM_OPT.
        relay: NEM relay equivalent circuit (22nm scaled by default).
        keep_lb_buffers: Ablation knob for CMOS_NEM_OPT — apply wire
            buffer downsizing but keep the LB input/output buffers
            (isolates the two halves of the paper's technique).
    """

    kind: VariantKind
    wire_buffer_downsize: float = 1.0
    relay: EquivalentCircuit = SCALED_22NM_CIRCUIT
    keep_lb_buffers: bool = False

    def __post_init__(self) -> None:
        if not 1.0 <= self.wire_buffer_downsize <= 16.0:
            raise ValueError(
                f"wire_buffer_downsize must be in [1, 16], got {self.wire_buffer_downsize}"
            )
        if self.kind is not VariantKind.CMOS_NEM_OPT and self.wire_buffer_downsize != 1.0:
            raise ValueError("only CMOS_NEM_OPT downsizes wire buffers")
        if self.keep_lb_buffers and self.kind is not VariantKind.CMOS_NEM_OPT:
            raise ValueError("keep_lb_buffers is an ablation of CMOS_NEM_OPT only")


#: LUT logic delay in FO4 units (4-LUT read path at 22nm, HSPICE-class).
LUT_DELAY_FO4 = 7.0
#: FF clock-to-Q / setup in FO4 units.
CLK_Q_FO4 = 2.0
SETUP_FO4 = 1.5


class FpgaVariant:
    """One fully elaborated FPGA design point.

    Args:
        params: Architecture (with the evaluation channel width).
        config: Variant configuration.
        tech: Technology node models.

    After construction (`solve` runs automatically) the variant
    exposes `fabric`, `leakage_spec`, `dynamic_spec`, `area`,
    `tile_pitch_m` and the per-component buffer objects.
    """

    def __init__(
        self,
        params: ArchParams,
        config: VariantConfig,
        tech: Technology = PTM_22NM,
    ) -> None:
        self.params = params
        self.config = config
        self.tech = tech
        self.inventory: TileInventory = build_inventory(params)

        kind = config.kind
        legacy_off_cap = 4.0 * tech.transistor.c_drain_min
        if kind is VariantKind.CMOS_ONLY:
            self.switch = CmosRoutingSwitch(tech=tech.transistor, width=4.0)
            self._switch_c_off = legacy_off_cap
            self._crosspoint_c = tech.transistor.c_drain_min  # min-width crosspoint
        else:
            self.switch = NemRoutingSwitch(circuit=config.relay)
            self._switch_c_off = config.relay.c_off
            self._crosspoint_c = config.relay.c_off
        # Buffer *sizing* load: the naive CMOS-NEM FPGA keeps the
        # baseline's buffer designs (it "does not use our technique"),
        # so its chains are sized as if pass-transistor parasitics
        # still loaded the wires; only the optimised variant re-sizes
        # for the relays' tiny off-capacitance.
        if kind is VariantKind.CMOS_NEM_NAIVE:
            self._sizing_off_cap = legacy_off_cap
        else:
            self._sizing_off_cap = self._switch_c_off

        self.has_lb_buffers = kind is not VariantKind.CMOS_NEM_OPT or config.keep_lb_buffers
        self.level_restorer = kind is VariantKind.CMOS_ONLY
        self.downsize = config.wire_buffer_downsize

        # Solved state (filled by solve()).
        self.tile_pitch_m: float = 0.0
        self.area: Optional[AreaBreakdown] = None
        self.wire_buffer: Optional[RoutingBuffer] = None
        self.lb_input_buffer: Optional[RoutingBuffer] = None
        self.lb_output_buffer: Optional[RoutingBuffer] = None
        self.solve()

    # -- derived loads -----------------------------------------------------

    @property
    def off_taps_per_wire(self) -> float:
        """Off switches hanging on one segment wire: CB taps across the
        span plus SB taps at the joints."""
        p = self.params
        w = p.channel_width
        cb_taps_per_tile = (
            p.inputs_per_lb * p.fc_in_abs + p.outputs_per_lb * p.fc_out_abs
        ) / (4.0 * w)
        # A wire borders two tile rows/columns -> 2x the per-channel-side
        # tap density, over L tiles; plus Fs switches at each end.
        return 2.0 * cb_taps_per_tile * p.segment_length + 2.0 * p.fs

    def crossbar_row_cap(self) -> float:
        """Cap of one LB crossbar input row: crosspoint loads + wire."""
        row_length = local_wire_length(self.params, max(self.tile_pitch_m, 1e-6))
        wire_c = self.tech.interconnect.wire_capacitance(row_length)
        return self.params.crossbar_outputs * self._crosspoint_c + wire_c

    def _wire_load(self, pitch: float, for_sizing: bool = False) -> float:
        seg_len = segment_wire_length(self.params, pitch)
        c_wire = self.tech.interconnect.wire_capacitance(seg_len)
        off_cap = self._sizing_off_cap if for_sizing else self._switch_c_off
        return c_wire + self.off_taps_per_wire * off_cap

    def _local_load(self, pitch: float) -> float:
        length = local_wire_length(self.params, pitch)
        wire_c = self.tech.interconnect.wire_capacitance(length)
        return wire_c + self.params.crossbar_outputs * self._crosspoint_c

    # -- geometry fixed point -----------------------------------------------

    def _component_areas(self) -> ComponentAreas:
        t = self.tech.transistor
        def area_of(buffer: Optional[RoutingBuffer]) -> float:
            return buffer.area_min_widths if buffer is not None else 0.0
        return ComponentAreas(
            lb_input_buffer=area_of(self.lb_input_buffer),
            lb_output_buffer=area_of(self.lb_output_buffer),
            wire_buffer=area_of(self.wire_buffer),
        )

    def solve(self, iterations: int = 6) -> None:
        """Iterate the pitch <-> buffer-sizing fixed point."""
        tech_t = self.tech.transistor
        pitch = 30e-6 * (self.tech.node_nm / 22.0)  # sensible seed
        for _ in range(iterations):
            self.tile_pitch_m = pitch
            wire_load = self._wire_load(pitch, for_sizing=True)
            local_load = self._local_load(pitch)
            self.wire_buffer = sized_buffer(
                tech_t,
                wire_load,
                level_restorer=self.level_restorer,
                downsize_factor=self.downsize,
            )
            if self.has_lb_buffers:
                self.lb_input_buffer = sized_buffer(
                    tech_t, local_load, level_restorer=self.level_restorer
                )
                self.lb_output_buffer = sized_buffer(
                    tech_t, local_load, level_restorer=self.level_restorer
                )
            else:
                self.lb_input_buffer = None
                self.lb_output_buffer = None
            self.area = tile_area(
                self.inventory,
                self._component_areas(),
                self.tech,
                switches_are_relays=self.config.kind.uses_relays,
                crossbar_is_relays=self.config.kind.uses_relays,
                include_lb_input_buffers=self.lb_input_buffer is not None,
                include_lb_output_buffers=self.lb_output_buffer is not None,
            )
            new_pitch = self.area.tile_pitch_m
            if abs(new_pitch - pitch) < 1e-9:
                pitch = new_pitch
                break
            pitch = new_pitch
        self.tile_pitch_m = pitch

    # -- evaluation interfaces ---------------------------------------------

    def fabric(self) -> FabricElectrical:
        """Electrical fabric view for `repro.vpr.timing`."""
        assert self.area is not None
        t = self.tech.transistor
        fo4 = t.fo4_delay()
        pitch = self.tile_pitch_m
        seg_len = segment_wire_length(self.params, pitch)
        wire_r = self.tech.interconnect.wire_resistance(seg_len)
        wire_c = self.tech.interconnect.wire_capacitance(seg_len)
        if self.config.kind.uses_relays:
            # Relay routes hop through M3-M5 via stacks.
            wire_r += 4.0 * self.tech.interconnect.via_resistance

        row_cap = self.crossbar_row_cap()
        xbar_r = self.switch.resistance if self.config.kind.uses_relays else t.r_min_nmos
        c_lut_in = 2.0 * t.c_gate_min

        # t_local_in: IPIN -> LUT input.
        if self.lb_input_buffer is not None:
            t_in = self.lb_input_buffer.delay(row_cap) + 0.69 * xbar_r * c_lut_in
        else:
            # Route drives the row directly (its cap is charged by the
            # last routing stage); only the crosspoint hop remains.
            t_in = 0.69 * xbar_r * (c_lut_in + 0.2 * row_cap)

        # t_local_out: LUT output -> OPIN (2:1 mux + optional buffer).
        mux_delay = 0.69 * t.r_min_nmos * (2.0 * t.c_drain_min)
        if self.lb_output_buffer is not None:
            t_out = mux_delay + self.lb_output_buffer.delay(self._local_load(pitch))
        else:
            t_out = mux_delay

        # Intra-cluster feedback: output mux -> crossbar row -> LUT in.
        drv_r = (
            self.lb_output_buffer.output_resistance
            if self.lb_output_buffer is not None
            else t.r_min_nmos / 2.0
        )
        t_fb = t_out + 0.69 * (drv_r * row_cap + xbar_r * c_lut_in)

        return FabricElectrical(
            tech=self.tech,
            switch_r=self.switch.resistance,
            switch_c=self.switch.parasitic_capacitance,
            switch_c_off=self._switch_c_off,
            off_taps_per_wire=self.off_taps_per_wire,
            wire_r=wire_r,
            wire_c=wire_c,
            wire_buffer=self.wire_buffer,
            lb_input_buffer=self.lb_input_buffer,
            lb_output_buffer=self.lb_output_buffer,
            t_lut=LUT_DELAY_FO4 * fo4,
            t_local_in=t_in,
            t_local_out=t_out,
            t_local_feedback=t_fb,
            t_clk_q=CLK_Q_FO4 * fo4,
            t_su=SETUP_FO4 * fo4,
            degraded_inputs=self.level_restorer,
            crossbar_row_cap=row_cap,
        )

    def leakage_spec(self) -> LeakageSpec:
        t = self.tech.transistor
        if self.config.kind.uses_relays:
            switch_leak = 0.0
            sram_leak = 0.0
            xbar_switch_leak = 0.0
            xbar_sram_leak = 0.0
        else:
            switch_leak = cmos_switch_leakage(t, width=4.0)
            sram_leak = sram_bit_leakage(t)
            xbar_switch_leak = cmos_switch_leakage(t, width=1.0)
            xbar_sram_leak = sram_bit_leakage(t)
        return LeakageSpec(
            tech=t,
            switch_leak=switch_leak,
            sram_leak=sram_leak,
            wire_buffer=self.wire_buffer,
            lb_input_buffer=self.lb_input_buffer,
            lb_output_buffer=self.lb_output_buffer,
            crossbar_switch_leak=xbar_switch_leak,
            crossbar_sram_leak=xbar_sram_leak,
        )

    def dynamic_spec(self) -> DynamicSpec:
        t = self.tech.transistor
        # Local hop: crossbar row share + crosspoint + LUT input gate.
        hop_cap = self.crossbar_row_cap() / max(self.params.crossbar_outputs, 1)
        hop_cap += self.switch.parasitic_capacitance if self.config.kind.uses_relays else t.c_drain_min
        hop_cap += 2.0 * t.c_gate_min
        if self.lb_input_buffer is not None:
            hop_cap += 0.3 * self.lb_input_buffer.chain.internal_switching_capacitance()
        from ..power.dynamic import (
            CLOCK_BUFFER_CAP_WIDTHS,
            CLOCK_WIRE_PITCH_FRACTION,
            LUT_INTERNAL_CAP_WIDTHS,
        )

        clock_cap = CLOCK_BUFFER_CAP_WIDTHS * t.inverter_input_cap
        clock_cap += self.tech.interconnect.wire_capacitance(
            CLOCK_WIRE_PITCH_FRACTION * self.tile_pitch_m
        )
        return DynamicSpec(
            tech=t,
            local_hop_cap=hop_cap,
            lut_internal_cap=LUT_INTERNAL_CAP_WIDTHS * t.inverter_input_cap,
            clock_cap_per_tile=clock_cap,
        )

    def __repr__(self) -> str:
        return (
            f"FpgaVariant({self.config.kind.value}, downsize={self.downsize:g}, "
            f"pitch={self.tile_pitch_m * 1e6:.1f} um)"
        )


def baseline_variant(params: ArchParams, tech: Technology = PTM_22NM) -> FpgaVariant:
    return FpgaVariant(params, VariantConfig(VariantKind.CMOS_ONLY), tech)


def naive_nem_variant(params: ArchParams, tech: Technology = PTM_22NM) -> FpgaVariant:
    return FpgaVariant(params, VariantConfig(VariantKind.CMOS_NEM_NAIVE), tech)


def optimized_nem_variant(
    params: ArchParams, downsize: float = 4.0, tech: Technology = PTM_22NM
) -> FpgaVariant:
    return FpgaVariant(
        params, VariantConfig(VariantKind.CMOS_NEM_OPT, wire_buffer_downsize=downsize), tech
    )
