"""Design-point evaluation: (delay, dynamic power, leakage, area).

Joins the substrates: a routed design (`repro.vpr.flow.FlowResult`)
is evaluated under one `FpgaVariant`'s electrical models.  Routing is
variant-independent (the paper replaces switches 1:1, keeping W), so
one P&R run serves every variant of a circuit — exactly the paper's
methodology and a large compute saving.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

from ..obs import get_tracer
from ..power.activity import ActivityModel, estimate_activities
from ..power.dynamic import dynamic_power, total_dynamic
from ..power.leakage import fpga_leakage, total_leakage
from ..vpr.flow import FlowResult
from ..vpr.timing import TimingReport, analyze_timing
from .variants import FpgaVariant


@dataclasses.dataclass
class DesignPoint:
    """One (circuit, variant) evaluation.

    Attributes:
        circuit: Circuit name.
        variant: The evaluated variant.
        critical_path: Application critical path delay (s).
        frequency: Clock used for dynamic power (Hz).
        dynamic: Dynamic power breakdown (W).
        leakage: Leakage power breakdown (W).
        tile_footprint_m2: Stacked tile footprint (m^2).
        timing: Full STA report (kept for inspection).
        produced_by: Telemetry span id of the evaluation that produced
            this point (None when no tracer was active) — joins result
            rows back to the flow trace in exported telemetry.
    """

    circuit: str
    variant: FpgaVariant
    critical_path: float
    frequency: float
    dynamic: Dict[str, float]
    leakage: Dict[str, float]
    tile_footprint_m2: float
    timing: TimingReport
    produced_by: Optional[str] = None

    @property
    def total_dynamic(self) -> float:
        return total_dynamic(self.dynamic)

    @property
    def total_leakage(self) -> float:
        return total_leakage(self.leakage)

    @property
    def total_power(self) -> float:
        return self.total_dynamic + self.total_leakage


def evaluate_design(
    flow: FlowResult,
    variant: FpgaVariant,
    activities: Optional[Mapping[str, float]] = None,
    frequency: Optional[float] = None,
    activity_model: ActivityModel = ActivityModel(),
) -> DesignPoint:
    """Evaluate one routed circuit under one variant's electricals.

    Args:
        flow: P&R result (shared across variants of the circuit).
        variant: The FPGA design point.
        activities: Per-signal transition densities; estimated from the
            netlist when not given.
        frequency: Clock for dynamic power; defaults to this variant's
            own maximum (1/critical path).  Pass the baseline's f_max
            for the paper's iso-performance comparisons.
    """
    tracer = get_tracer()
    with tracer.span(
        "evaluate",
        circuit=flow.netlist.name,
        variant=variant.config.kind.name,
    ) as span:
        fabric = variant.fabric()
        timing = analyze_timing(flow.placement, flow.routing, flow.graph, fabric)
        if activities is None:
            activities = estimate_activities(flow.netlist, activity_model)
        crit = timing.critical_path
        f_ref = frequency if frequency is not None else (1.0 / crit if crit > 0 else 1e9)

        num_tiles = flow.placement.grid_width * flow.placement.grid_height
        dyn = dynamic_power(
            netlist=flow.netlist,
            net_delays=timing.net_delays,
            activities=activities,
            spec=variant.dynamic_spec(),
            frequency=f_ref,
            num_tiles=num_tiles,
        )
        leak = fpga_leakage(variant.inventory, variant.leakage_spec(), num_tiles)
        assert variant.area is not None
        span.set_many(
            critical_path_s=crit,
            frequency_hz=f_ref,
            dynamic_w=total_dynamic(dyn),
            leakage_w=total_leakage(leak),
            footprint_m2=variant.area.footprint_m2,
        )
        return DesignPoint(
            circuit=flow.netlist.name,
            variant=variant,
            critical_path=crit,
            frequency=f_ref,
            dynamic=dyn,
            leakage=leak,
            tile_footprint_m2=variant.area.footprint_m2,
            timing=timing,
            produced_by=span.span_id,
        )


@dataclasses.dataclass
class Comparison:
    """Variant vs baseline ratios (the paper's reported quantities)."""

    circuit: str
    speedup: float
    dynamic_reduction: float
    leakage_reduction: float
    area_reduction: float

    @classmethod
    def of(cls, baseline: DesignPoint, candidate: DesignPoint) -> "Comparison":
        return cls(
            circuit=baseline.circuit,
            speedup=baseline.critical_path / candidate.critical_path,
            dynamic_reduction=baseline.total_dynamic / candidate.total_dynamic,
            leakage_reduction=baseline.total_leakage / candidate.total_leakage,
            area_reduction=baseline.tile_footprint_m2 / candidate.tile_footprint_m2,
        )
