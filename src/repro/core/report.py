"""Paper-style result reporting (headline claims, Fig. 12 tables).

The paper's abstract claims, at the 22nm node, that CMOS-NEM FPGAs
with selective buffer removal/downsizing simultaneously achieve:

* 10-fold leakage power reduction,
* 2-fold dynamic power reduction,
* 2-fold footprint area reduction,
* no application speed penalty,

while a CMOS-NEM FPGA *without* the technique reaches only 1.8x area,
1.3x dynamic and 2x leakage.  `headline_summary` evaluates those
quantities from sweep results and `format_headline` renders the
comparison table EXPERIMENTS.md records.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from .evaluate import Comparison
from .tradeoff import TradeoffCurve, TradeoffPoint, geomean_curve

#: The paper's headline numbers (for the comparison tables).
PAPER_HEADLINE = {
    "leakage_reduction": 10.0,
    "dynamic_reduction": 2.0,
    "area_reduction": 2.0,
    "speedup": 1.0,
}
PAPER_NAIVE = {
    "leakage_reduction": 2.0,
    "dynamic_reduction": 1.3,
    "area_reduction": 1.8,
}


@dataclasses.dataclass
class HeadlineSummary:
    """The reproduced headline quantities.

    Attributes:
        corner: Preferred corner of the (geomean) trade-off curve.
        naive: The no-technique comparison point.
        per_circuit: Preferred corner per circuit.
    """

    corner: TradeoffPoint
    naive: Optional[Comparison]
    per_circuit: Dict[str, TradeoffPoint]


def headline_summary(curves: Sequence[TradeoffCurve]) -> HeadlineSummary:
    """Aggregate sweep curves into the paper's headline quantities."""
    if not curves:
        raise ValueError("need at least one curve")
    agg = geomean_curve(curves) if len(curves) > 1 else curves[0]
    return HeadlineSummary(
        corner=agg.preferred_corner(),
        naive=agg.naive,
        per_circuit={c.circuit: c.preferred_corner() for c in curves},
    )


def format_headline(summary: HeadlineSummary) -> str:
    """Markdown-ish table: paper vs measured, optimised and naive."""
    corner = summary.corner
    lines = [
        "CMOS-NEM FPGA vs 22nm CMOS-only baseline (preferred corner)",
        "quantity             paper    measured",
        f"leakage reduction    {PAPER_HEADLINE['leakage_reduction']:>5.1f}x   {corner.leakage_reduction:>6.2f}x",
        f"dynamic reduction    {PAPER_HEADLINE['dynamic_reduction']:>5.1f}x   {corner.dynamic_reduction:>6.2f}x",
        f"area reduction       {PAPER_HEADLINE['area_reduction']:>5.1f}x   {corner.area_reduction:>6.2f}x",
        f"speed-up             {PAPER_HEADLINE['speedup']:>5.1f}x   {corner.speedup:>6.2f}x",
    ]
    if summary.naive is not None:
        naive = summary.naive
        lines += [
            "",
            "Without selective buffer removal/downsizing (naive CMOS-NEM)",
            "quantity             paper    measured",
            f"leakage reduction    {PAPER_NAIVE['leakage_reduction']:>5.1f}x   {naive.leakage_reduction:>6.2f}x",
            f"dynamic reduction    {PAPER_NAIVE['dynamic_reduction']:>5.1f}x   {naive.dynamic_reduction:>6.2f}x",
            f"area reduction       {PAPER_NAIVE['area_reduction']:>5.1f}x   {naive.area_reduction:>6.2f}x",
        ]
    return "\n".join(lines)


def format_fig12_table(curves: Sequence[TradeoffCurve]) -> str:
    """Fig. 12 as text: one row per sweep point per circuit."""
    lines = [
        f"{'circuit':24s} {'downsize':>8s} {'speedup':>8s} {'dyn.red':>8s} {'leak.red':>9s}"
    ]
    for curve in curves:
        for p in curve.points:
            lines.append(
                f"{curve.circuit:24s} {p.downsize:8.1f} {p.speedup:8.2f} "
                f"{p.dynamic_reduction:8.2f} {p.leakage_reduction:9.2f}"
            )
    return "\n".join(lines)
