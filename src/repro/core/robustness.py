"""Seed-robustness statistics for the headline comparisons.

Simulated annealing and negotiated routing are stochastic in their
seeds; a reproduction should show the paper's ratios are properties of
the architecture, not of one lucky placement.  `seed_sweep` re-runs
the flow across placement seeds and reports the distribution of every
headline ratio.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

from ..arch.params import ArchParams
from ..circuits.ptm import PTM_22NM, Technology
from ..netlist.core import Netlist
from ..vpr.flow import run_flow
from .evaluate import Comparison, evaluate_design
from .variants import baseline_variant, optimized_nem_variant


@dataclasses.dataclass
class RatioStats:
    """Distribution summary of one reduction ratio across seeds."""

    values: List[float]

    @property
    def geomean(self) -> float:
        return math.exp(sum(math.log(v) for v in self.values) / len(self.values))

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    @property
    def relative_spread(self) -> float:
        """(max - min) / geomean — the seed-noise figure."""
        return (self.maximum - self.minimum) / self.geomean


@dataclasses.dataclass
class SeedStudy:
    """Multi-seed flow statistics.

    Attributes:
        circuit: Circuit name.
        seeds: The placement seeds evaluated.
        comparisons: One paper-style comparison per successful seed.
        failed_seeds: Seeds whose routing did not close (excluded).
    """

    circuit: str
    seeds: List[int]
    comparisons: List[Comparison]
    failed_seeds: List[int]

    def stats(self) -> Dict[str, RatioStats]:
        if not self.comparisons:
            raise ValueError("no successful seeds to summarise")
        return {
            "speedup": RatioStats([c.speedup for c in self.comparisons]),
            "dynamic_reduction": RatioStats([c.dynamic_reduction for c in self.comparisons]),
            "leakage_reduction": RatioStats([c.leakage_reduction for c in self.comparisons]),
            "area_reduction": RatioStats([c.area_reduction for c in self.comparisons]),
        }


def seed_sweep(
    netlist: Netlist,
    params: ArchParams,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    downsize: float = 8.0,
    tech: Technology = PTM_22NM,
    channel_width: Optional[int] = None,
) -> SeedStudy:
    """Evaluate baseline vs optimised CMOS-NEM across placement seeds.

    Each seed gets its own placement and routing; the two variants
    share each seed's P&R (the paper's methodology), and power is
    compared at that seed's baseline clock.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    comparisons: List[Comparison] = []
    failed: List[int] = []
    for seed in seeds:
        flow = run_flow(netlist, params, seed=seed, channel_width=channel_width)
        if not flow.success:
            failed.append(seed)
            continue
        base = evaluate_design(flow, baseline_variant(params, tech))
        nem = evaluate_design(
            flow, optimized_nem_variant(params, downsize, tech), frequency=base.frequency
        )
        comparisons.append(Comparison.of(base, nem))
    return SeedStudy(
        circuit=netlist.name,
        seeds=list(seeds),
        comparisons=comparisons,
        failed_seeds=failed,
    )


def format_study(study: SeedStudy) -> str:
    """Text table of a seed study's ratio distributions."""
    stats = study.stats()
    lines = [
        f"{study.circuit}: {len(study.comparisons)}/{len(study.seeds)} seeds routed",
        f"{'ratio':>20s} {'geomean':>8s} {'min':>7s} {'max':>7s} {'spread':>7s}",
    ]
    for name, s in stats.items():
        lines.append(
            f"{name:>20s} {s.geomean:8.2f} {s.minimum:7.2f} {s.maximum:7.2f} "
            f"{100 * s.relative_spread:6.1f}%"
        )
    return "\n".join(lines)
