"""Power-speed trade-off sweeps (paper Fig. 12 and Sec. 3.4).

For each circuit: evaluate the CMOS-only baseline, then sweep the
optimised CMOS-NEM variant over wire-buffer downsize factors
("pretending the chain drives an up-to-8x smaller load").  Each sweep
point yields (speed-up, dynamic reduction, leakage reduction) relative
to the baseline at the baseline's operating frequency — the two curve
families of Figs. 12a/12b.  The *preferred corner* is the most
power-reduced point with no application speed penalty (speed-up >= 1),
which produces the paper's headline 10x/2x/2x-at-iso-speed claim.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

from ..arch.params import ArchParams
from ..circuits.ptm import PTM_22NM, Technology
from ..vpr.flow import FlowResult
from .evaluate import Comparison, DesignPoint, evaluate_design
from .variants import (
    FpgaVariant,
    baseline_variant,
    naive_nem_variant,
    optimized_nem_variant,
)

#: The paper sweeps pretend-load factors up to 8x; we extend slightly
#: so the iso-speed crossover is always bracketed at scaled workloads.
DEFAULT_DOWNSIZE_SWEEP: Sequence[float] = (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)


@dataclasses.dataclass(frozen=True)
class TradeoffPoint:
    """One sweep point of Fig. 12 (both panels share the x-axis)."""

    downsize: float
    speedup: float
    dynamic_reduction: float
    leakage_reduction: float
    area_reduction: float


@dataclasses.dataclass
class TradeoffCurve:
    """Per-circuit sweep results.

    Attributes:
        circuit: Circuit name ("geomean" for the aggregated curve).
        points: Sweep points in downsize order.
        baseline: The baseline design point (None for aggregates).
        naive: The no-technique CMOS-NEM comparison point.
    """

    circuit: str
    points: List[TradeoffPoint]
    baseline: Optional[DesignPoint] = None
    naive: Optional[Comparison] = None

    def preferred_corner(self) -> TradeoffPoint:
        """Most leakage-reduced point with speed-up >= 1 (no speed
        penalty); falls back to the fastest point if none qualifies."""
        eligible = [p for p in self.points if p.speedup >= 1.0]
        if eligible:
            return max(eligible, key=lambda p: p.leakage_reduction)
        return max(self.points, key=lambda p: p.speedup)


def sweep_circuit(
    flow: FlowResult,
    params: ArchParams,
    tech: Technology = PTM_22NM,
    downsizes: Sequence[float] = DEFAULT_DOWNSIZE_SWEEP,
    include_naive: bool = True,
) -> TradeoffCurve:
    """Run the Fig. 12 sweep for one routed circuit.

    All variants reuse the circuit's single P&R result; power is
    evaluated at the baseline's maximum operating frequency (the
    paper's iso-performance comparison).
    """
    if not downsizes:
        raise ValueError("need at least one downsize factor")
    baseline = evaluate_design(flow, baseline_variant(params, tech))
    f_ref = 1.0 / baseline.critical_path
    points: List[TradeoffPoint] = []
    for downsize in downsizes:
        variant = optimized_nem_variant(params, downsize, tech)
        point = evaluate_design(flow, variant, frequency=f_ref)
        cmp = Comparison.of(baseline, point)
        points.append(
            TradeoffPoint(
                downsize=downsize,
                speedup=cmp.speedup,
                dynamic_reduction=cmp.dynamic_reduction,
                leakage_reduction=cmp.leakage_reduction,
                area_reduction=cmp.area_reduction,
            )
        )
    naive_cmp: Optional[Comparison] = None
    if include_naive:
        naive_point = evaluate_design(flow, naive_nem_variant(params, tech), frequency=f_ref)
        naive_cmp = Comparison.of(baseline, naive_point)
    return TradeoffCurve(
        circuit=flow.netlist.name, points=points, baseline=baseline, naive=naive_cmp
    )


def _geomean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geomean of empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def geomean_curve(curves: Sequence[TradeoffCurve]) -> TradeoffCurve:
    """Geometric-mean curve across circuits (the paper's '20 largest
    MCNC (geometric mean)' series)."""
    if not curves:
        raise ValueError("need at least one curve")
    n_points = len(curves[0].points)
    if any(len(c.points) != n_points for c in curves):
        raise ValueError("curves must share the downsize sweep")
    points: List[TradeoffPoint] = []
    for i in range(n_points):
        pts = [c.points[i] for c in curves]
        points.append(
            TradeoffPoint(
                downsize=pts[0].downsize,
                speedup=_geomean([p.speedup for p in pts]),
                dynamic_reduction=_geomean([p.dynamic_reduction for p in pts]),
                leakage_reduction=_geomean([p.leakage_reduction for p in pts]),
                area_reduction=_geomean([p.area_reduction for p in pts]),
            )
        )
    naive: Optional[Comparison] = None
    naives = [c.naive for c in curves if c.naive is not None]
    if naives:
        naive = Comparison(
            circuit="geomean",
            speedup=_geomean([n.speedup for n in naives]),
            dynamic_reduction=_geomean([n.dynamic_reduction for n in naives]),
            leakage_reduction=_geomean([n.leakage_reduction for n in naives]),
            area_reduction=_geomean([n.area_reduction for n in naives]),
        )
    return TradeoffCurve(circuit="geomean", points=points, naive=naive)


def fig12_series(curve: TradeoffCurve) -> Dict[str, List[float]]:
    """The two Fig. 12 panels as plottable series for one curve:
    (speed-up vs dynamic reduction) and (speed-up vs leakage
    reduction)."""
    return {
        "speedup": [p.speedup for p in curve.points],
        "dynamic_reduction": [p.dynamic_reduction for p in curve.points],
        "leakage_reduction": [p.leakage_reduction for p in curve.points],
        "downsize": [p.downsize for p in curve.points],
    }
