"""Inverter-chain sizing by the method of logical effort [Weste 10].

The paper sizes each segmented-wire driver as an inverter chain with a
minimum-sized first stage, sweeping the fanout per stage to find the
delay-optimal chain, and then *re-designs* the chain "while pretending
that it drives a smaller capacitive load (up to 8x smaller)" to trade
delay for power (Sec. 3.4).  This module implements exactly that
machinery:

* `optimal_chain(c_load)`   — delay-optimal chain for a load,
* `downsized_chain(c_load, pretend_factor)` — the paper's reduced
  chain, optimal for c_load/pretend_factor but evaluated driving the
  full c_load.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List

from .ptm import TransistorModel

#: Inverter parasitic delay in tau units (Weste-Harris p_inv ~ 1).
P_INV = 1.0

#: The classical optimum stage effort (rho ~ 3.6, commonly "use 4").
OPTIMAL_STAGE_EFFORT = 4.0


@dataclasses.dataclass(frozen=True)
class InverterChain:
    """A sized buffer chain.

    Attributes:
        stage_sizes: Width multiple of each stage (first is 1.0 for a
            minimum-sized first stage, per the paper).
        tech: Transistor model supplying tau / capacitance units.
    """

    stage_sizes: List[float]
    tech: TransistorModel

    def __post_init__(self) -> None:
        if not self.stage_sizes:
            raise ValueError("chain needs at least one stage")
        if any(s < 1.0 for s in self.stage_sizes):
            raise ValueError(f"stage sizes must be >= 1 (minimum size), got {self.stage_sizes}")

    @property
    def num_stages(self) -> int:
        return len(self.stage_sizes)

    @property
    def input_capacitance(self) -> float:
        """Cap presented to whatever drives this chain (F)."""
        return self.stage_sizes[0] * self.tech.inverter_input_cap

    @property
    def total_width(self) -> float:
        """Sum of stage sizes — proportional to layout area and leakage."""
        return sum(self.stage_sizes)

    @property
    def output_resistance(self) -> float:
        """Drive resistance of the final stage (ohm)."""
        return self.tech.inverter_drive_resistance / self.stage_sizes[-1]

    @property
    def output_self_capacitance(self) -> float:
        """Drain self-load of the final stage (F)."""
        return self.stage_sizes[-1] * self.tech.inverter_output_cap

    def leakage_power(self) -> float:
        """Static power (W): leakage scales with total device width."""
        return self.total_width * self.tech.inverter_leakage

    def internal_switching_capacitance(self) -> float:
        """Capacitance switched *inside* the chain per output transition
        (F): every stage's input gate cap plus its drain self-load,
        excluding the external load."""
        c = 0.0
        for i, size in enumerate(self.stage_sizes):
            c += size * self.tech.inverter_output_cap
            if i > 0:
                c += size * self.tech.inverter_input_cap
        return c

    def switching_energy(self, c_load: float) -> float:
        """Energy per output transition driving ``c_load`` (J), CV^2."""
        if c_load < 0:
            raise ValueError(f"c_load must be non-negative, got {c_load}")
        c_total = self.internal_switching_capacitance() + c_load
        return c_total * self.tech.vdd**2

    def delay(self, c_load: float) -> float:
        """Elmore chain delay (s) driving ``c_load``.

        Stage i drives stage i+1's gate cap plus its own drain cap;
        the final stage drives its drain cap plus the external load.
        """
        if c_load < 0:
            raise ValueError(f"c_load must be non-negative, got {c_load}")
        r_unit = self.tech.inverter_drive_resistance
        total = 0.0
        for i, size in enumerate(self.stage_sizes):
            r = r_unit / size
            c = size * self.tech.inverter_output_cap
            if i + 1 < self.num_stages:
                c += self.stage_sizes[i + 1] * self.tech.inverter_input_cap
            else:
                c += c_load
            total += 0.69 * r * c
        return total

    def first_stage_delay(self, c_load: float) -> float:
        """Delay of the first stage alone (s) — the stage that sees a
        possibly Vt-degraded input level."""
        if c_load < 0:
            raise ValueError(f"c_load must be non-negative, got {c_load}")
        r = self.tech.inverter_drive_resistance / self.stage_sizes[0]
        c = self.stage_sizes[0] * self.tech.inverter_output_cap
        if self.num_stages > 1:
            c += self.stage_sizes[1] * self.tech.inverter_input_cap
        else:
            c += c_load
        return 0.69 * r * c


def optimal_num_stages(electrical_effort: float) -> int:
    """Delay-optimal stage count for path effort H (>= 1 stage)."""
    if electrical_effort <= 0:
        raise ValueError(f"electrical effort must be positive, got {electrical_effort}")
    if electrical_effort <= 1.0:
        return 1
    n = max(1, round(math.log(electrical_effort) / math.log(OPTIMAL_STAGE_EFFORT)))
    return int(n)


def geometric_chain(tech: TransistorModel, c_load: float, num_stages: int) -> InverterChain:
    """Chain of ``num_stages`` with geometrically increasing sizes.

    First stage is minimum sized (paper: "with minimum-sized inverter
    as its first stage"); the per-stage fanout is (C_load/C_min)^(1/N).
    """
    if num_stages < 1:
        raise ValueError(f"num_stages must be >= 1, got {num_stages}")
    if c_load <= 0:
        raise ValueError(f"c_load must be positive, got {c_load}")
    h = max(c_load / tech.inverter_input_cap, 1.0)
    fanout = h ** (1.0 / num_stages)
    sizes = [max(1.0, fanout**i) for i in range(num_stages)]
    return InverterChain(stage_sizes=sizes, tech=tech)


def optimal_chain(tech: TransistorModel, c_load: float, max_stages: int = 12) -> InverterChain:
    """Delay-optimal chain for ``c_load``, swept over stage counts.

    Mirrors the paper's "swept the fanout of each stage (and, hence,
    size) of the chain to obtain the delay-optimal implementation".
    Parity (inversion) is ignored, as for a routing buffer either
    polarity can be absorbed.
    """
    best: InverterChain | None = None
    best_delay = math.inf
    for n in range(1, max_stages + 1):
        chain = geometric_chain(tech, c_load, n)
        d = chain.delay(c_load)
        if d < best_delay:
            best, best_delay = chain, d
    assert best is not None
    return best


def downsized_chain(
    tech: TransistorModel, c_load: float, pretend_factor: float, max_stages: int = 12
) -> InverterChain:
    """The paper's power-reduced chain (Sec. 3.4).

    Redesigns the chain to be delay-optimal for ``c_load /
    pretend_factor`` — i.e. "pretending that it drives a smaller
    capacitive load (up to 8-times smaller)" — producing a smaller,
    lower-power chain that is slower when evaluated against the real
    load.  ``pretend_factor = 1`` recovers the optimal chain.
    """
    if pretend_factor < 1.0:
        raise ValueError(f"pretend_factor must be >= 1, got {pretend_factor}")
    return optimal_chain(tech, c_load / pretend_factor, max_stages=max_stages)
