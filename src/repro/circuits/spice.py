"""SPICE-lite: linear MNA transient simulation of RC networks.

The paper characterises its circuits with HSPICE; our flow uses
first-order Elmore expressions for speed.  This module provides the
validation bridge: a small modified-nodal-analysis engine for linear
R/C networks with ideal (time-varying) voltage sources, integrated
with backward Euler.  Tests use it to bound the Elmore model's error
against "real" waveform simulation on the same netlists.

Supported elements: resistors, grounded or floating capacitors, ideal
voltage sources (arbitrary waveform callables).  Node '0' is ground.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

Waveform = Callable[[float], float]


@dataclasses.dataclass(frozen=True)
class _Resistor:
    name: str
    n1: str
    n2: str
    resistance: float


@dataclasses.dataclass(frozen=True)
class _Capacitor:
    name: str
    n1: str
    n2: str
    capacitance: float


@dataclasses.dataclass(frozen=True)
class _VSource:
    name: str
    positive: str
    negative: str
    waveform: Waveform


class Circuit:
    """A linear R/C/V netlist with MNA transient analysis."""

    def __init__(self) -> None:
        self._resistors: List[_Resistor] = []
        self._capacitors: List[_Capacitor] = []
        self._sources: List[_VSource] = []
        self._names: Dict[str, None] = {}

    # -- construction ------------------------------------------------------

    def _check_name(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"duplicate element name {name!r}")
        self._names[name] = None

    def add_resistor(self, name: str, n1: str, n2: str, resistance: float) -> None:
        if resistance <= 0:
            raise ValueError(f"resistance must be positive, got {resistance}")
        self._check_name(name)
        self._resistors.append(_Resistor(name, n1, n2, resistance))

    def add_capacitor(self, name: str, n1: str, n2: str, capacitance: float) -> None:
        if capacitance <= 0:
            raise ValueError(f"capacitance must be positive, got {capacitance}")
        self._check_name(name)
        self._capacitors.append(_Capacitor(name, n1, n2, capacitance))

    def add_vsource(self, name: str, positive: str, negative: str, waveform: Waveform) -> None:
        self._check_name(name)
        self._sources.append(_VSource(name, positive, negative, waveform))

    # -- assembly ------------------------------------------------------------

    def _node_index(self) -> Dict[str, int]:
        nodes: Dict[str, int] = {}
        for element in [*self._resistors, *self._capacitors]:
            for node in (element.n1, element.n2):
                if node != "0" and node not in nodes:
                    nodes[node] = len(nodes)
        for src in self._sources:
            for node in (src.positive, src.negative):
                if node != "0" and node not in nodes:
                    nodes[node] = len(nodes)
        return nodes

    def _assemble(self):
        nodes = self._node_index()
        n = len(nodes)
        m = len(self._sources)
        size = n + m
        g = np.zeros((size, size))
        c = np.zeros((size, size))

        def stamp_g(i: Optional[int], j: Optional[int], value: float) -> None:
            if i is not None:
                g[i, i] += value
            if j is not None:
                g[j, j] += value
            if i is not None and j is not None:
                g[i, j] -= value
                g[j, i] -= value

        def idx(node: str) -> Optional[int]:
            return None if node == "0" else nodes[node]

        for r in self._resistors:
            stamp_g(idx(r.n1), idx(r.n2), 1.0 / r.resistance)
        for cap in self._capacitors:
            i, j = idx(cap.n1), idx(cap.n2)
            if i is not None:
                c[i, i] += cap.capacitance
            if j is not None:
                c[j, j] += cap.capacitance
            if i is not None and j is not None:
                c[i, j] -= cap.capacitance
                c[j, i] -= cap.capacitance
        for k, src in enumerate(self._sources):
            row = n + k
            i, j = idx(src.positive), idx(src.negative)
            if i is not None:
                g[i, row] += 1.0
                g[row, i] += 1.0
            if j is not None:
                g[j, row] -= 1.0
                g[row, j] -= 1.0
        return nodes, g, c

    # -- analysis ----------------------------------------------------------------

    def transient(
        self,
        t_stop: float,
        dt: float,
        initial: Optional[Dict[str, float]] = None,
    ) -> "TransientResult":
        """Backward-Euler transient from t = 0 to ``t_stop``.

        Args:
            t_stop: End time (s).
            dt: Fixed time step (s).
            initial: Initial node voltages (default all zero).
        """
        if t_stop <= 0 or dt <= 0 or dt > t_stop:
            raise ValueError("need 0 < dt <= t_stop")
        nodes, g, c = self._assemble()
        n = len(nodes)
        m = len(self._sources)
        steps = int(round(t_stop / dt))
        x = np.zeros(n + m)
        if initial:
            for node, value in initial.items():
                if node != "0":
                    x[nodes[node]] = value
        system = g + c / dt
        lu = np.linalg.inv(system)  # dense is fine at these sizes
        times = np.empty(steps + 1)
        voltages = np.empty((steps + 1, n))
        times[0] = 0.0
        voltages[0] = x[:n]
        rhs = np.zeros(n + m)
        for k in range(1, steps + 1):
            t = k * dt
            rhs[:] = c @ x / dt
            for s, src in enumerate(self._sources):
                rhs[n + s] = src.waveform(t)
            x = lu @ rhs
            times[k] = t
            voltages[k] = x[:n]
        return TransientResult(times=times, node_index=dict(nodes), voltages=voltages)


@dataclasses.dataclass
class TransientResult:
    """Sampled transient waveforms.

    Attributes:
        times: Sample instants (s).
        node_index: Node name -> column in ``voltages``.
        voltages: (samples, nodes) array.
    """

    times: np.ndarray
    node_index: Dict[str, int]
    voltages: np.ndarray

    def voltage(self, node: str) -> np.ndarray:
        return self.voltages[:, self.node_index[node]]

    def crossing_time(self, node: str, level: float, rising: bool = True) -> Optional[float]:
        """First time the node crosses ``level`` (linear interpolation)."""
        v = self.voltage(node)
        for k in range(1, len(v)):
            crossed = v[k] >= level if rising else v[k] <= level
            before = v[k - 1] < level if rising else v[k - 1] > level
            if crossed and before:
                frac = (level - v[k - 1]) / (v[k] - v[k - 1])
                return float(self.times[k - 1] + frac * (self.times[k] - self.times[k - 1]))
        return None

    def delay_50(self, node: str, v_final: float, t_step: float = 0.0) -> Optional[float]:
        """50%-crossing delay after a step at ``t_step`` (s)."""
        crossing = self.crossing_time(node, 0.5 * v_final)
        if crossing is None:
            return None
        return crossing - t_step


def step(v_high: float, t_rise: float = 0.0) -> Waveform:
    """Ideal (or linear-ramp) step waveform starting at t = 0."""
    if t_rise < 0:
        raise ValueError("rise time must be non-negative")

    def waveform(t: float) -> float:
        if t <= 0:
            return 0.0
        if t_rise == 0.0 or t >= t_rise:
            return v_high
        return v_high * t / t_rise

    return waveform


def simulate_rc_ladder(
    driver_resistance: float,
    segment_resistances: Sequence[float],
    segment_capacitances: Sequence[float],
    v_step: float = 1.0,
    samples: int = 2000,
) -> Tuple[TransientResult, str]:
    """Convenience: step-drive a pi-ladder and return (result, far node).

    Builds: Vsrc -> R_driver -> [R_i with C_i to ground at each joint].
    """
    if len(segment_resistances) != len(segment_capacitances):
        raise ValueError("segment R and C lists must align")
    if not segment_resistances:
        raise ValueError("need at least one segment")
    circuit = Circuit()
    circuit.add_vsource("vin", "in", "0", step(v_step))
    circuit.add_resistor("rdrv", "in", "n0", driver_resistance)
    total_tau = driver_resistance * sum(segment_capacitances)
    prev = "n0"
    for i, (r, c) in enumerate(zip(segment_resistances, segment_capacitances)):
        node = f"n{i + 1}"
        circuit.add_resistor(f"r{i}", prev, node, r)
        circuit.add_capacitor(f"c{i}", node, "0", c)
        total_tau += r * sum(segment_capacitances[i:])
        prev = node
    t_stop = max(total_tau * 8.0, 1e-15)
    result = circuit.transient(t_stop=t_stop, dt=t_stop / samples)
    return result, prev
