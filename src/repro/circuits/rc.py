"""RC tree networks and Elmore delay.

The stand-in for the paper's HSPICE timing extraction: routed FPGA
nets become RC trees (driver resistance, switch resistances, wire
RC, sink capacitances) and per-sink delays come from the Elmore
approximation

    t_d(sink) = 0.69 * sum over nodes i of C_i * R(path(root->i) ∩ path(root->sink))

which is exact in first moment and the standard FPGA CAD choice
(VPR itself uses Elmore for routing timing).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

ELMORE_STEP_FACTOR = 0.69


@dataclasses.dataclass
class RCNode:
    """One node of an RC tree.

    Attributes:
        name: Unique identifier within the tree.
        capacitance: Grounded capacitance at this node (F).
        resistance_to_parent: Series resistance from the parent (ohm);
            ignored for the root.
    """

    name: str
    capacitance: float
    resistance_to_parent: float = 0.0
    parent: Optional[str] = None


class RCTree:
    """A rooted RC tree built incrementally.

    Typical use::

        tree = RCTree("src", driver_resistance=5e3)
        tree.add("n1", parent="src", resistance=100.0, capacitance=2e-15)
        tree.add("sink", parent="n1", resistance=50.0, capacitance=1e-15)
        delay = tree.elmore_delay("sink")
    """

    def __init__(self, root: str, driver_resistance: float = 0.0, root_capacitance: float = 0.0):
        if driver_resistance < 0 or root_capacitance < 0:
            raise ValueError("driver resistance / root capacitance must be non-negative")
        self._nodes: Dict[str, RCNode] = {
            root: RCNode(name=root, capacitance=root_capacitance, resistance_to_parent=driver_resistance)
        }
        self._children: Dict[str, List[str]] = {root: []}
        self.root = root
        #: The driver's output resistance is modelled as the root's
        #: resistance_to_parent (from an ideal source).
        self.driver_resistance = driver_resistance

    def add(self, name: str, parent: str, resistance: float, capacitance: float) -> None:
        """Attach a node below ``parent`` through ``resistance``."""
        if name in self._nodes:
            raise ValueError(f"duplicate node name {name!r}")
        if parent not in self._nodes:
            raise KeyError(f"unknown parent {parent!r}")
        if resistance < 0 or capacitance < 0:
            raise ValueError("resistance and capacitance must be non-negative")
        self._nodes[name] = RCNode(
            name=name, capacitance=capacitance, resistance_to_parent=resistance, parent=parent
        )
        self._children.setdefault(name, [])
        self._children[parent].append(name)

    def add_capacitance(self, name: str, extra: float) -> None:
        """Add grounded capacitance to an existing node (e.g. a tap)."""
        if extra < 0:
            raise ValueError(f"extra capacitance must be non-negative, got {extra}")
        self._nodes[name].capacitance += extra

    @property
    def node_names(self) -> List[str]:
        return list(self._nodes)

    def total_capacitance(self) -> float:
        """Sum of all grounded capacitance (the driver's CV^2 load)."""
        return sum(node.capacitance for node in self._nodes.values())

    def _path_to_root(self, name: str) -> List[str]:
        path = [name]
        node = self._nodes[name]
        while node.parent is not None:
            path.append(node.parent)
            node = self._nodes[node.parent]
        return path

    def elmore_delay(self, sink: str) -> float:
        """Elmore delay (s) from the ideal source to ``sink``.

        Includes the 0.69 step-response factor so values compare
        directly with 50%-crossing SPICE delays.
        """
        if sink not in self._nodes:
            raise KeyError(f"unknown sink {sink!r}")
        # Upstream resistance of each node on the sink path, then each
        # tree node contributes C * (shared upstream resistance).
        sink_path = self._path_to_root(sink)
        sink_path_set = set(sink_path)
        # Cumulative resistance from source to each node on sink path.
        cumulative: Dict[str, float] = {}
        running = 0.0
        for name in reversed(sink_path):  # root -> sink order
            running += self._nodes[name].resistance_to_parent
            cumulative[name] = running

        delay = 0.0
        for node in self._nodes.values():
            # Find the deepest ancestor of `node` on the sink path: the
            # shared portion of the two root paths.
            probe: Optional[str] = node.name
            while probe is not None and probe not in sink_path_set:
                probe = self._nodes[probe].parent
            if probe is None:
                continue
            delay += node.capacitance * cumulative[probe]
        return ELMORE_STEP_FACTOR * delay

    def max_sink_delay(self) -> float:
        """Largest Elmore delay over all leaf nodes."""
        leaves = [n for n, kids in self._children.items() if not kids]
        if not leaves:
            return 0.0
        return max(self.elmore_delay(leaf) for leaf in leaves)


def lumped_delay(resistance: float, capacitance: float) -> float:
    """Single-pole RC delay 0.69 * R * C (s)."""
    if resistance < 0 or capacitance < 0:
        raise ValueError("resistance and capacitance must be non-negative")
    return ELMORE_STEP_FACTOR * resistance * capacitance


def distributed_wire_delay(r_total: float, c_total: float) -> float:
    """Delay of a distributed RC line, 0.69 * R * C / 2 equivalent.

    A uniformly distributed line has half the Elmore product of the
    lumped equivalent; this helper keeps that factor in one place.
    """
    return ELMORE_STEP_FACTOR * 0.5 * r_total * c_total
