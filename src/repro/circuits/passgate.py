"""NMOS pass-transistor routing switch model (paper Sec. 3.2, Fig. 8).

Traditional SRAM-based FPGAs route through NMOS pass transistors.  Two
properties matter to the paper's argument:

* **Vt drop** — an NMOS passes logic high only up to Vdd - Vt, so the
  rising edge at the far side is slow and never full swing; half-latch
  level restorers (part of every routing buffer) repair it at area,
  delay and power cost.
* **Resistance** — the effective on-resistance when passing a rising
  signal degrades as the source rises toward Vdd - Vt (gate overdrive
  collapses), making the pass transistor slower than its nominal
  R would suggest.

`PassTransistor` captures both with first-order expressions; the
routing-switch comparison in `switches.py` builds on it.
"""

from __future__ import annotations

import dataclasses

from .ptm import TransistorModel


@dataclasses.dataclass(frozen=True)
class PassTransistor:
    """An NMOS pass switch of a given width multiple.

    Attributes:
        tech: Transistor constants.
        width: Width as a multiple of minimum (routing switches are
            typically several times minimum width).
    """

    tech: TransistorModel
    width: float = 4.0

    def __post_init__(self) -> None:
        if self.width < 1.0:
            raise ValueError(f"width must be >= 1 (minimum size), got {self.width}")

    @property
    def output_high(self) -> float:
        """Maximum output voltage when passing logic high: Vdd - Vt.

        (The paper notes gate boosting is no longer possible at 22nm
        due to gate-oxide reliability, so the full drop applies.)
        """
        return self.tech.vdd - self.tech.vt

    @property
    def swing_loss_fraction(self) -> float:
        """Fraction of the supply lost to the Vt drop."""
        return self.tech.vt / self.tech.vdd

    @property
    def resistance_low(self) -> float:
        """Effective R (ohm) passing logic low (full gate overdrive)."""
        return self.tech.r_min_nmos / self.width

    @property
    def resistance_high(self) -> float:
        """Effective R (ohm) passing logic high.

        As the source rises, Vgs falls toward Vt; the average overdrive
        across the transition is roughly halved, so the effective
        resistance is amplified by Vdd/(Vdd - Vt) relative to the
        low-passing case — the first-order expression used in FPGA
        architecture texts [Betz 99].
        """
        degradation = self.tech.vdd / (self.tech.vdd - self.tech.vt)
        return self.resistance_low * degradation

    @property
    def resistance(self) -> float:
        """Worst-case (timing) resistance: the rising-edge value."""
        return self.resistance_high

    @property
    def parasitic_capacitance(self) -> float:
        """Source/drain junction cap added to the routed net (F).

        Both diffusion terminals load the net; scaled by width.
        """
        return 2.0 * self.width * self.tech.c_drain_min

    @property
    def leakage_power(self) -> float:
        """Subthreshold leakage through an *off* pass switch (W).

        Off pass transistors in the unused routing fabric leak between
        the nets they separate; scaled by width.
        """
        return self.width * self.tech.i_leak_min * self.tech.vdd

    @property
    def area_min_widths(self) -> float:
        """Layout area in minimum-width-transistor units [Betz 99]."""
        return 0.5 + 0.5 * self.width  # diffusion sharing discount
