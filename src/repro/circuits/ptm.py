"""22nm PTM-class technology constants (paper Sec. 3.3).

The paper characterises FPGA circuit blocks with HSPICE on the 22nm
Predictive Technology Model [Zhao 06] for transistors and wires.  We
replace HSPICE with first-order analytic models; this module is the
single source of the underlying constants, so every delay/power/area
number in the flow traces back to one place.

Values are representative of published 22nm PTM HP data (Vdd = 0.8 V,
FO4 ~ 16 ps, intermediate-layer wires ~ 2.5 ohm/um and ~ 0.2 fF/um).
Absolute accuracy is secondary — the paper's claims are ratios between
FPGA variants built from the *same* constants.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class TransistorModel:
    """Minimum-size device constants at a technology node.

    Attributes:
        node_nm: Technology node (nm).
        vdd: Nominal supply voltage (V).
        vt: Threshold voltage (V) — sets the NMOS pass-gate drop.
        r_min_nmos: Effective drive resistance of a minimum-width NMOS
            (ohm); PMOS is ``pmos_beta`` times weaker per width.
        c_gate_min: Gate capacitance of a minimum-width transistor (F).
        c_drain_min: Drain junction capacitance, minimum width (F).
        i_leak_min: Subthreshold + gate leakage current of one
            minimum-width off transistor (A).
        pmos_beta: NMOS/PMOS mobility ratio (PMOS widths are scaled up
            by this factor inside gates).
        min_width_nm: Minimum drawn transistor width (nm), the unit all
            sizing factors multiply.
    """

    node_nm: int = 22
    vdd: float = 0.8
    vt: float = 0.31
    r_min_nmos: float = 14e3
    c_gate_min: float = 55e-18
    c_drain_min: float = 40e-18
    i_leak_min: float = 25e-9
    pmos_beta: float = 1.9
    min_width_nm: float = 44.0

    def __post_init__(self) -> None:
        if self.vdd <= 0 or self.vt <= 0 or self.vt >= self.vdd:
            raise ValueError(f"need 0 < Vt < Vdd, got Vt={self.vt}, Vdd={self.vdd}")
        for name in ("r_min_nmos", "c_gate_min", "c_drain_min", "i_leak_min"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def inverter_input_cap(self) -> float:
        """Input capacitance of a minimum inverter (NMOS + beta*PMOS)."""
        return self.c_gate_min * (1.0 + self.pmos_beta)

    @property
    def inverter_output_cap(self) -> float:
        """Self-load (drain) capacitance of a minimum inverter."""
        return self.c_drain_min * (1.0 + self.pmos_beta)

    @property
    def inverter_drive_resistance(self) -> float:
        """Effective switching resistance of a minimum inverter (ohm).

        PMOS width is upsized by beta so pull-up and pull-down match;
        the effective R is the NMOS value.
        """
        return self.r_min_nmos

    @property
    def inverter_leakage(self) -> float:
        """Static power of one minimum inverter (W).

        One of the two devices leaks at any input state; PMOS leakage
        per width matches NMOS by construction of the beta sizing.
        """
        return self.i_leak_min * self.vdd

    @property
    def tau(self) -> float:
        """Intrinsic time constant R_min * C_gate_min (s), the logical
        effort delay unit."""
        return self.inverter_drive_resistance * self.inverter_input_cap

    def fo4_delay(self) -> float:
        """Fanout-of-4 inverter delay (s), the canonical speed metric."""
        # Elmore: R * (self load + 4x input load), with the 0.69 ln2
        # step-response factor.
        r = self.inverter_drive_resistance
        c = self.inverter_output_cap + 4.0 * self.inverter_input_cap
        return 0.69 * r * c


@dataclasses.dataclass(frozen=True)
class InterconnectModel:
    """PTM-style wire parasitics for the routing layers.

    Attributes:
        r_per_m: Wire resistance (ohm/m) on the intermediate metal the
            FPGA routing uses.
        c_per_m: Wire capacitance (F/m) including coupling.
        via_resistance: Resistance of one via stack (ohm); NEM relays
            sit between M3 and M5, so relay routes include via hops.
    """

    r_per_m: float = 2.5e6
    c_per_m: float = 0.20e-9
    via_resistance: float = 8.0

    def __post_init__(self) -> None:
        if self.r_per_m <= 0 or self.c_per_m <= 0:
            raise ValueError("wire parasitics must be positive")

    def wire_resistance(self, length_m: float) -> float:
        if length_m < 0:
            raise ValueError(f"length must be non-negative, got {length_m}")
        return self.r_per_m * length_m

    def wire_capacitance(self, length_m: float) -> float:
        if length_m < 0:
            raise ValueError(f"length must be non-negative, got {length_m}")
        return self.c_per_m * length_m


@dataclasses.dataclass(frozen=True)
class Technology:
    """Bundle of transistor + interconnect models for one node."""

    transistor: TransistorModel = TransistorModel()
    interconnect: InterconnectModel = InterconnectModel()

    @property
    def node_nm(self) -> int:
        return self.transistor.node_nm

    @property
    def vdd(self) -> float:
        return self.transistor.vdd


#: The paper's evaluation node.
PTM_22NM = Technology()

#: The 90nm node used for the paper's reference layouts (before
#: scaling results to 22nm).  Constants follow the same PTM family
#: with classical scaling factors.
PTM_90NM = Technology(
    transistor=TransistorModel(
        node_nm=90,
        vdd=1.2,
        vt=0.35,
        r_min_nmos=9e3,
        c_gate_min=180e-18,
        c_drain_min=130e-18,
        i_leak_min=8e-9,
        min_width_nm=120.0,
    ),
    interconnect=InterconnectModel(r_per_m=0.6e6, c_per_m=0.23e-9, via_resistance=4.0),
)
