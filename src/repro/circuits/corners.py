"""Process corners for the 22nm transistor models.

The paper evaluates at the typical PTM corner.  Real sign-off checks
claims across process corners; this module provides the classic
five-corner set as scalings of the typical `TransistorModel`:

* drive resistance: fast silicon is ~20% stronger, slow ~25% weaker;
* leakage: exponential in Vt shift — fast corners leak several times
  more, slow corners several times less;
* capacitance: weak corner dependence (+-5%).

`corner_technology` returns a full `Technology` for use anywhere the
typical one is accepted (variants, fabrics, power models).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from .ptm import InterconnectModel, Technology, TransistorModel


@dataclasses.dataclass(frozen=True)
class CornerSpec:
    """Multipliers applied to the typical transistor model."""

    name: str
    resistance_scale: float
    leakage_scale: float
    capacitance_scale: float
    vt_shift: float  # volts, positive = higher Vt (slower, less leaky)


#: The classic five corners (NMOS/PMOS skews folded into one axis:
#: routing structures are NMOS-dominated).
CORNERS: Dict[str, CornerSpec] = {
    "tt": CornerSpec("tt", 1.00, 1.0, 1.00, 0.0),
    "ff": CornerSpec("ff", 0.80, 4.0, 1.05, -0.03),
    "ss": CornerSpec("ss", 1.30, 0.3, 0.95, +0.03),
    "fs": CornerSpec("fs", 0.90, 2.0, 1.00, -0.015),
    "sf": CornerSpec("sf", 1.15, 0.5, 1.00, +0.015),
}


def corner_transistor(base: TransistorModel, corner: str) -> TransistorModel:
    """The typical model skewed to a named corner."""
    if corner not in CORNERS:
        raise KeyError(f"unknown corner {corner!r}; choose from {sorted(CORNERS)}")
    spec = CORNERS[corner]
    return dataclasses.replace(
        base,
        r_min_nmos=base.r_min_nmos * spec.resistance_scale,
        i_leak_min=base.i_leak_min * spec.leakage_scale,
        c_gate_min=base.c_gate_min * spec.capacitance_scale,
        c_drain_min=base.c_drain_min * spec.capacitance_scale,
        vt=base.vt + spec.vt_shift,
    )


def corner_technology(base: Technology, corner: str) -> Technology:
    """Full technology bundle at a corner (interconnect unchanged —
    metal varies independently of device corners)."""
    return Technology(
        transistor=corner_transistor(base.transistor, corner),
        interconnect=base.interconnect,
    )


def all_corners(base: Technology) -> Dict[str, Technology]:
    """{corner name: Technology} for the full five-corner set."""
    return {name: corner_technology(base, name) for name in CORNERS}
