"""Programmable routing switch circuit models: CMOS vs NEM.

The unit the paper replaces (Fig. 3): an NMOS pass transistor plus its
controlling 6T SRAM cell, versus a single NEM relay that *is* both the
switch and the configuration bit.

Each switch model exposes the quantities the FPGA evaluation needs:
series resistance, capacitive loading on the routed net, static
leakage, configuration-storage leakage, CMOS-footprint area, and
whether the switch preserves full signal swing (drives buffer
requirements downstream).
"""

from __future__ import annotations

import dataclasses
from typing import Protocol

from ..nemrelay.device import EquivalentCircuit, SCALED_22NM_CIRCUIT
from .passgate import PassTransistor
from .ptm import TransistorModel

#: Transistor count of the standard configuration SRAM cell.
SRAM_TRANSISTORS = 6


@dataclasses.dataclass(frozen=True)
class SRAMCell:
    """6T configuration SRAM cell attached to a CMOS routing switch."""

    tech: TransistorModel

    @property
    def leakage_power(self) -> float:
        """Static power (W).  Roughly half the devices leak; SRAM cells
        use long/high-Vt devices, so per-device leakage is reduced."""
        return 0.5 * SRAM_TRANSISTORS * 0.1 * self.tech.i_leak_min * self.tech.vdd

    @property
    def area_min_widths(self) -> float:
        """Area in minimum-width transistor units [Betz 99]."""
        return 6.0


class RoutingSwitch(Protocol):
    """What the routing graph / timing / power models need to know."""

    @property
    def resistance(self) -> float: ...

    @property
    def parasitic_capacitance(self) -> float: ...

    @property
    def leakage_power(self) -> float: ...

    @property
    def config_leakage_power(self) -> float: ...

    @property
    def cmos_area_min_widths(self) -> float: ...

    @property
    def full_swing(self) -> bool: ...


@dataclasses.dataclass(frozen=True)
class CmosRoutingSwitch:
    """NMOS pass transistor + SRAM cell (paper Fig. 3a)."""

    tech: TransistorModel
    width: float = 4.0

    @property
    def pass_transistor(self) -> PassTransistor:
        return PassTransistor(tech=self.tech, width=self.width)

    @property
    def resistance(self) -> float:
        return self.pass_transistor.resistance

    @property
    def parasitic_capacitance(self) -> float:
        return self.pass_transistor.parasitic_capacitance

    @property
    def leakage_power(self) -> float:
        return self.pass_transistor.leakage_power

    @property
    def config_leakage_power(self) -> float:
        return SRAMCell(self.tech).leakage_power

    @property
    def cmos_area_min_widths(self) -> float:
        return self.pass_transistor.area_min_widths + SRAMCell(self.tech).area_min_widths

    @property
    def full_swing(self) -> bool:
        """False: the Vt drop mandates level-restoring buffers."""
        return False


@dataclasses.dataclass(frozen=True)
class NemRoutingSwitch:
    """A NEM relay as switch *and* configuration bit (paper Fig. 3b).

    Stacked between M3 and M5 above the CMOS, so its CMOS footprint is
    zero; zero off-state leakage and no SRAM cell.
    """

    circuit: EquivalentCircuit = SCALED_22NM_CIRCUIT

    @property
    def resistance(self) -> float:
        return self.circuit.r_on

    @property
    def parasitic_capacitance(self) -> float:
        """On-state coupling cap loads the net; tiny (20 aF)."""
        return self.circuit.c_on

    @property
    def leakage_power(self) -> float:
        """Zero: the air gap does not conduct (paper: below 10 pA)."""
        return 0.0

    @property
    def config_leakage_power(self) -> float:
        """Zero: state is held mechanically by Vhold on shared lines.

        The hold-line network dissipates no DC power because the gate
        is a capacitor.
        """
        return 0.0

    @property
    def cmos_area_min_widths(self) -> float:
        """Zero CMOS footprint: relays live in the BEOL stack."""
        return 0.0

    @property
    def full_swing(self) -> bool:
        """True: a metal contact passes rail-to-rail (paper Fig. 8b)."""
        return True


def default_cmos_switch(tech: TransistorModel) -> CmosRoutingSwitch:
    """Baseline routing switch sized per standard FPGA practice."""
    return CmosRoutingSwitch(tech=tech, width=4.0)


def default_nem_switch() -> NemRoutingSwitch:
    """The paper's scaled relay switch (Fig. 11 equivalent circuit)."""
    return NemRoutingSwitch()
