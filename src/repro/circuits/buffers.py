"""FPGA routing buffer library (paper Sec. 3.1-3.2).

Three buffer classes drive the paper's analysis:

* **LB input buffers** — drive the LB-internal crossbar + local wires;
  fixed, known load.  Removed entirely in the optimised CMOS-NEM FPGA.
* **LB output buffers** — drive the feedback network + output pins;
  fixed, known load.  Removed entirely in the optimised CMOS-NEM FPGA.
* **Wire buffers** — drive segmented routing wires; load is mapping-
  dependent, so they are kept but *downsized* in CMOS-NEM FPGAs.

In the CMOS-only baseline each buffer embeds a half-latch level
restorer (Fig. 8a) to undo the pass-transistor Vt drop; that restorer
costs leakage, input load, and a rising-edge delay penalty.  NEM-relay
routing is full swing, so CMOS-NEM buffers (where kept) drop the
restorer.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from .logical_effort import InverterChain, downsized_chain, optimal_chain
from .ptm import TransistorModel

#: Extra leakage of the half-latch (weak feedback PMOS fights the
#: input; modeled as a small always-on width multiple).
HALF_LATCH_LEAK_WIDTHS = 1.5

#: Extra input capacitance of the half-latch feedback device (as a
#: multiple of minimum inverter input cap).
HALF_LATCH_CAP_WIDTHS = 0.6

#: Rising-edge delay penalty of restoring a Vt-dropped input: the first
#: stage switches late because the input only reaches Vdd - Vt, and the
#: half latch initially opposes the transition.  First-order: delay of
#: the first stage is amplified by Vdd / (Vdd - 2 Vt) (input overdrive
#: margin above the inverter trip point), folded into a lumped factor.
def restorer_delay_factor(tech: TransistorModel) -> float:
    """Delay multiplier for a buffer whose input is Vt-degraded."""
    margin = tech.vdd - 2.0 * tech.vt
    if margin <= 0.05 * tech.vdd:
        margin = 0.05 * tech.vdd
    return 1.0 + tech.vt / margin


@dataclasses.dataclass(frozen=True)
class RoutingBuffer:
    """A routing buffer: an inverter chain, optionally level-restoring.

    Attributes:
        chain: The sized inverter stages.
        level_restorer: True for CMOS-only FPGAs fed by pass
            transistors (half latch present).
        tech: Transistor constants.
        design_load: The capacitive load (F) the chain was sized for
            (bookkeeping: the real load at evaluation time may differ
            for downsized chains).
    """

    chain: InverterChain
    level_restorer: bool
    tech: TransistorModel
    design_load: float

    @property
    def input_capacitance(self) -> float:
        c = self.chain.input_capacitance
        if self.level_restorer:
            c += HALF_LATCH_CAP_WIDTHS * self.tech.inverter_input_cap
        return c

    @property
    def output_resistance(self) -> float:
        return self.chain.output_resistance

    def delay(self, c_load: float, input_degraded: Optional[bool] = None) -> float:
        """Buffer delay (s) driving ``c_load``.

        ``input_degraded`` defaults to the presence of the restorer:
        in a CMOS-only FPGA every buffer input arrives through pass
        transistors and pays the restoration penalty.  Only the first
        stage sees the degraded level, so only its delay is amplified.
        """
        base = self.chain.delay(c_load)
        degraded = self.level_restorer if input_degraded is None else input_degraded
        if degraded:
            penalty = (restorer_delay_factor(self.tech) - 1.0) * self.chain.first_stage_delay(c_load)
            base += penalty
        return base

    def leakage_power(self) -> float:
        leak = self.chain.leakage_power()
        if self.level_restorer:
            leak += HALF_LATCH_LEAK_WIDTHS * self.tech.inverter_leakage
        return leak

    def switching_energy(self, c_load: float) -> float:
        """Energy per transition (J) including internal nodes."""
        return self.chain.switching_energy(c_load)

    @property
    def area_min_widths(self) -> float:
        """CMOS area in minimum-width transistor units.

        Each inverter is one NMOS + one beta-scaled PMOS.
        """
        area = self.chain.total_width * (1.0 + self.tech.pmos_beta)
        if self.level_restorer:
            area += 2.0  # weak feedback PMOS + restoring inverter share
        return area


def sized_buffer(
    tech: TransistorModel,
    c_load: float,
    level_restorer: bool,
    downsize_factor: float = 1.0,
) -> RoutingBuffer:
    """Build a buffer sized for ``c_load``.

    ``downsize_factor`` > 1 applies the paper's pretend-smaller-load
    redesign (Sec. 3.4) — the returned buffer is optimal for
    ``c_load / downsize_factor``.
    """
    if downsize_factor == 1.0:
        chain = optimal_chain(tech, c_load)
    else:
        chain = downsized_chain(tech, c_load, downsize_factor)
    return RoutingBuffer(
        chain=chain, level_restorer=level_restorer, tech=tech, design_load=c_load
    )
