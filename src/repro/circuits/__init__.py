"""Circuit-level modelling substrate (HSPICE / PTM stand-in).

First-order analytic models of everything the paper characterised with
HSPICE on 22nm PTM: transistor and wire constants (`ptm`), RC trees
with Elmore delay (`rc`), logical-effort inverter chains
(`logical_effort`), NMOS pass gates with the Vt-drop problem
(`passgate`), routing switches CMOS vs NEM (`switches`), and the
routing buffer library with half-latch level restorers (`buffers`).
"""

from .ptm import InterconnectModel, PTM_22NM, PTM_90NM, Technology, TransistorModel
from .rc import ELMORE_STEP_FACTOR, RCNode, RCTree, distributed_wire_delay, lumped_delay
from .logical_effort import (
    InverterChain,
    OPTIMAL_STAGE_EFFORT,
    P_INV,
    downsized_chain,
    geometric_chain,
    optimal_chain,
    optimal_num_stages,
)
from .passgate import PassTransistor
from .switches import (
    CmosRoutingSwitch,
    NemRoutingSwitch,
    RoutingSwitch,
    SRAMCell,
    SRAM_TRANSISTORS,
    default_cmos_switch,
    default_nem_switch,
)
from .buffers import (
    HALF_LATCH_CAP_WIDTHS,
    HALF_LATCH_LEAK_WIDTHS,
    RoutingBuffer,
    restorer_delay_factor,
    sized_buffer,
)
from .spice import Circuit, TransientResult, simulate_rc_ladder, step

__all__ = [
    "Circuit",
    "CmosRoutingSwitch",
    "ELMORE_STEP_FACTOR",
    "TransientResult",
    "simulate_rc_ladder",
    "step",
    "HALF_LATCH_CAP_WIDTHS",
    "HALF_LATCH_LEAK_WIDTHS",
    "InterconnectModel",
    "InverterChain",
    "NemRoutingSwitch",
    "OPTIMAL_STAGE_EFFORT",
    "P_INV",
    "PTM_22NM",
    "PTM_90NM",
    "PassTransistor",
    "RCNode",
    "RCTree",
    "RoutingBuffer",
    "RoutingSwitch",
    "SRAMCell",
    "SRAM_TRANSISTORS",
    "Technology",
    "TransistorModel",
    "default_cmos_switch",
    "default_nem_switch",
    "distributed_wire_delay",
    "downsized_chain",
    "geometric_chain",
    "lumped_delay",
    "optimal_chain",
    "optimal_num_stages",
    "restorer_delay_factor",
    "sized_buffer",
]
