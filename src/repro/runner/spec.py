"""Batch job model: `JobSpec`, `BatchSpec`, `JobResult`.

A batch is a matrix of (circuit x variant x seed x arch) jobs — the
shape of the paper's Fig. 12 evaluation, which sweeps every benchmark
circuit under every design variant.  Each job is fully described by a
picklable, hashable `JobSpec` with a *stable key* so that

* results can be ordered deterministically (by key, never by
  completion order),
* serial and parallel executions of the same spec are comparable
  job-for-job,
* telemetry shards and result files have collision-free names.

`JobResult` carries only plain-JSON data (QoR scalars plus sha256
digests of the bulky artefacts — routing trees and bitstream), so
comparing two executions for bit-identity is a dict comparison.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

#: Default circuit shrink factor for batch jobs (DESIGN.md Sec. 6).
DEFAULT_SCALE = 0.02

#: Bump whenever a code change alters what any job computes — QoR
#: scalars or artefact digests.  Part of every result-store key
#: (`code_digest`), so bumping it invalidates every cached result at
#: once without touching the store on disk.
RESULT_VERSION = 1

#: Variant spellings accepted in specs; "nem-opt" takes an optional
#: ``:<downsize>`` suffix ("nem-opt:8").
VARIANT_NAMES = ("baseline", "nem-naive", "nem-opt")

#: Fault-campaign modes accepted in specs (mirrors
#: `repro.faults.CAMPAIGN_MODES`; kept literal so the job model stays
#: importable without the faults package's numpy machinery).
DEFECT_MODES = ("uniform", "variation", "aging")

#: Mission repair-policy base spellings (mirrors
#: `repro.faults.mission.MISSION_POLICIES`; literal for the same
#: reason as `DEFECT_MODES`).  ``periodic-<k>`` takes a positive
#: integer epoch count.
MISSION_POLICY_NAMES = (
    "never", "on-failure", "every-epoch-bist", "widen-early",
)


def mission_policy_valid(name: str) -> bool:
    """Whether ``name`` spells a known mission repair policy."""
    if name in MISSION_POLICY_NAMES:
        return True
    if name.startswith("periodic-"):
        suffix = name[len("periodic-"):]
        return suffix.isdigit() and int(suffix) >= 1
    return False


def _canon_json(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest_of(obj: object) -> str:
    """sha256 hex digest of an object's canonical JSON form."""
    return hashlib.sha256(_canon_json(obj).encode("utf-8")).hexdigest()


def code_digest(extra: Optional[Dict[str, object]] = None) -> str:
    """Identity of the *code* producing job results.

    The second axis of the result store's key: two processes agree on
    a cached result only when they agree on this digest.  Folds in the
    git SHA of the installed checkout (None outside a repo — a store
    shared between a repo and a tarball checkout conservatively treats
    them as different code) and `RESULT_VERSION`, the manual
    escape hatch for behaviour changes git cannot see (e.g. an
    environment knob).  ``extra`` lets callers add their own axes.
    """
    from ..obs import git_sha

    doc: Dict[str, object] = {
        "result_version": RESULT_VERSION,
        "git_sha": git_sha(),
    }
    if extra:
        doc.update(extra)
    return digest_of(doc)


def parse_variant(variant: str) -> Tuple[str, float]:
    """Split a variant spec into (name, downsize factor)."""
    name, _, suffix = variant.partition(":")
    if name not in VARIANT_NAMES:
        raise ValueError(
            f"unknown variant {variant!r}; expected one of {VARIANT_NAMES} "
            "(nem-opt takes an optional :<downsize> suffix)"
        )
    if suffix and name != "nem-opt":
        raise ValueError(f"only nem-opt takes a downsize suffix, got {variant!r}")
    downsize = float(suffix) if suffix else (8.0 if name == "nem-opt" else 1.0)
    return name, downsize


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One (circuit, variant, seed, arch) job of a batch.

    Attributes:
        circuit: Suite circuit name (`repro.netlist.load_circuit`).
        variant: ``baseline`` / ``nem-naive`` / ``nem-opt[:downsize]``.
        seed: Placement seed.
        width: Channel width W; None derives Wmin and routes at the
            paper's +20% low-stress width.
        scale: Circuit shrink factor.
        arch: Extra `ArchParams` overrides as sorted (name, value)
            pairs (e.g. ``(("segment_length", 4),)``).
        fault: Test instrumentation only — workers honour ``"crash"``
            (die without a result), ``"crash-first"`` (die on the
            first attempt only), ``"hang"`` (sleep past any timeout),
            ``"stall"`` (keep running but silence all telemetry,
            exercising heartbeat-based stall detection) and
            ``"fail"`` (raise inside the job).  Never set in
            production specs.
        defect_rate: When set, the job flows clean, then injects a
            seeded fault campaign at this per-switch rate and runs the
            self-repair ladder; QoR gains ``repair.*`` metrics and a
            ``repaired_trees`` digest.  None (default) = no faults —
            legacy specs keep their keys and digests.
        defect_seed: Campaign seed (`repro.faults.FaultCampaign.seed`).
        defect_mode: Campaign sampling mode (`DEFECT_MODES`).
        mission_epochs: When set, the job flows clean, then flies an
            epoch-stepped lifetime mission (`repro.faults.mission`)
            under one aging campaign; QoR gains ``mission.*`` scalars
            plus the per-epoch record list, and digests a
            ``mission_curve`` entry.  None (default) = no mission —
            legacy specs keep their keys and digests.  Mutually
            exclusive with ``defect_rate`` (a mission *is* a defect
            schedule).
        mission_policy: Repair policy spelling (`mission_policy_valid`).
        mission_seed: The mission's aging-campaign seed.
        mission_years: Simulated mission length in device-years.
    """

    circuit: str
    variant: str = "baseline"
    seed: int = 1
    width: Optional[int] = None
    scale: float = DEFAULT_SCALE
    arch: Tuple[Tuple[str, object], ...] = ()
    fault: Optional[str] = None
    defect_rate: Optional[float] = None
    defect_seed: int = 0
    defect_mode: str = "uniform"
    mission_epochs: Optional[int] = None
    mission_policy: str = "on-failure"
    mission_seed: int = 0
    mission_years: float = 10.0

    def __post_init__(self) -> None:
        parse_variant(self.variant)  # validate eagerly
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if self.width is not None and self.width < 2:
            raise ValueError(f"width must be >= 2, got {self.width}")
        if not 0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if self.defect_rate is not None and not 0.0 <= self.defect_rate <= 1.0:
            raise ValueError(
                f"defect_rate must be in [0, 1], got {self.defect_rate}")
        if self.defect_seed < 0:
            raise ValueError(f"defect_seed must be >= 0, got {self.defect_seed}")
        if self.defect_mode not in DEFECT_MODES:
            raise ValueError(
                f"defect_mode must be one of {DEFECT_MODES}, "
                f"got {self.defect_mode!r}")
        if self.mission_epochs is not None:
            if self.mission_epochs < 1:
                raise ValueError(
                    f"mission_epochs must be >= 1, got {self.mission_epochs}")
            if self.defect_rate is not None:
                raise ValueError(
                    "mission and defect axes are mutually exclusive — a "
                    "mission already schedules its own defects")
            if not mission_policy_valid(self.mission_policy):
                raise ValueError(
                    f"unknown mission policy {self.mission_policy!r}; "
                    f"expected one of {MISSION_POLICY_NAMES} or "
                    "'periodic-<k>'")
            if self.mission_seed < 0:
                raise ValueError(
                    f"mission_seed must be >= 0, got {self.mission_seed}")
            if self.mission_years <= 0:
                raise ValueError(
                    f"mission_years must be > 0, got {self.mission_years}")

    @property
    def key(self) -> str:
        """Stable identity: same spec -> same key, across processes."""
        width = f"w{self.width}" if self.width is not None else "wmin"
        key = f"{self.circuit}@{self.scale:g}/{self.variant}/s{self.seed}/{width}"
        if self.arch:
            overrides = ",".join(f"{k}={v}" for k, v in self.arch)
            key += f"/{overrides}"
        if self.defect_rate is not None:
            key += f"/d{self.defect_rate:g}.{self.defect_mode}.s{self.defect_seed}"
        if self.mission_epochs is not None:
            key += (f"/m{self.mission_epochs}x{self.mission_years:g}y"
                    f".{self.mission_policy}.s{self.mission_seed}")
        return key

    def store_key(self, code: str) -> str:
        """The result-store identity: this spec under that code digest.

        Hashes the full `to_dict` form (not just `key`) so every axis
        — including ones whose spellings could collide in the
        human-readable key — contributes exactly.  Fault-injected
        specs have no cacheable result and are rejected.
        """
        if self.fault:
            raise ValueError(
                f"fault-injected spec {self.key!r} has no cacheable result")
        return digest_of({"job": self.to_dict(), "code": code})

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "circuit": self.circuit,
            "variant": self.variant,
            "seed": self.seed,
            "width": self.width,
            "scale": self.scale,
        }
        if self.arch:
            doc["arch"] = dict(self.arch)
        if self.fault:
            doc["fault"] = self.fault
        if self.defect_rate is not None:
            doc["defect_rate"] = self.defect_rate
            doc["defect_seed"] = self.defect_seed
            doc["defect_mode"] = self.defect_mode
        if self.mission_epochs is not None:
            doc["mission_epochs"] = self.mission_epochs
            doc["mission_policy"] = self.mission_policy
            doc["mission_seed"] = self.mission_seed
            doc["mission_years"] = self.mission_years
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "JobSpec":
        arch = doc.get("arch") or {}
        if not isinstance(arch, dict):
            raise ValueError(f"job 'arch' must be an object, got {arch!r}")
        return cls(
            circuit=str(doc["circuit"]),
            variant=str(doc.get("variant", "baseline")),
            seed=int(doc.get("seed", 1)),
            width=(int(doc["width"]) if doc.get("width") is not None else None),
            scale=float(doc.get("scale", DEFAULT_SCALE)),
            arch=tuple(sorted(arch.items())),
            fault=(str(doc["fault"]) if doc.get("fault") else None),
            defect_rate=(float(doc["defect_rate"])
                         if doc.get("defect_rate") is not None else None),
            defect_seed=int(doc.get("defect_seed", 0)),
            defect_mode=str(doc.get("defect_mode", "uniform")),
            mission_epochs=(int(doc["mission_epochs"])
                            if doc.get("mission_epochs") is not None else None),
            mission_policy=str(doc.get("mission_policy", "on-failure")),
            mission_seed=int(doc.get("mission_seed", 0)),
            mission_years=float(doc.get("mission_years", 10.0)),
        )


@dataclasses.dataclass(frozen=True)
class BatchSpec:
    """A full batch: the job list plus execution policy.

    Attributes:
        jobs: Job matrix, in submission order (results are reported in
            this order regardless of worker completion order).
        workers: Worker process count; 1 degrades to serial in-process
            execution.
        timeout_s: Per-job wall-clock limit; None disables.
        retries: Relaunch budget per job after a worker crash.
    """

    jobs: Tuple[JobSpec, ...]
    workers: int = 1
    timeout_s: Optional[float] = None
    retries: int = 1

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a batch needs at least one job")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        keys = [job.key for job in self.jobs]
        dupes = {k for k in keys if keys.count(k) > 1}
        if dupes:
            raise ValueError(f"duplicate job keys in batch: {sorted(dupes)}")

    @classmethod
    def from_matrix(
        cls,
        circuits: Sequence[str],
        variants: Sequence[str] = ("baseline",),
        seeds: Sequence[int] = (1,),
        widths: Sequence[Optional[int]] = (None,),
        scale: float = DEFAULT_SCALE,
        arch: Optional[Dict[str, object]] = None,
        defect_rates: Sequence[Optional[float]] = (None,),
        defect_seed: int = 0,
        defect_mode: str = "uniform",
        mission_epochs: Optional[int] = None,
        mission_policies: Sequence[str] = ("on-failure",),
        mission_seeds: Sequence[int] = (0,),
        mission_years: float = 10.0,
        workers: int = 1,
        timeout_s: Optional[float] = None,
        retries: int = 1,
    ) -> "BatchSpec":
        """Expand the cross product into a job list (circuit-major).

        ``defect_rates`` adds a fault-campaign axis: each non-None
        rate produces jobs that flow clean, inject that rate, and
        self-repair (None = the ordinary fault-free job).

        ``mission_epochs`` adds a lifetime-mission axis instead: one
        job per (policy, campaign seed) cell, each flying the same
        mission length under its own aging trajectory.
        """
        overrides = tuple(sorted((arch or {}).items()))
        mission_cells: Sequence[Tuple[Optional[str], int]] = (
            [(policy, mseed)
             for policy in mission_policies for mseed in mission_seeds]
            if mission_epochs is not None else [(None, 0)])
        jobs = tuple(
            JobSpec(
                circuit=circuit, variant=variant, seed=seed,
                width=width, scale=scale, arch=overrides,
                defect_rate=rate,
                defect_seed=defect_seed if rate is not None else 0,
                defect_mode=defect_mode if rate is not None else "uniform",
                mission_epochs=mission_epochs,
                mission_policy=(policy if policy is not None
                                else "on-failure"),
                mission_seed=mseed,
                mission_years=mission_years,
            )
            for circuit in circuits
            for variant in variants
            for seed in seeds
            for width in widths
            for rate in defect_rates
            for policy, mseed in mission_cells
        )
        return cls(jobs=jobs, workers=workers, timeout_s=timeout_s,
                   retries=retries)

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "BatchSpec":
        policy = {
            "workers": int(doc.get("workers", 1)),
            "timeout_s": (float(doc["timeout_s"])
                          if doc.get("timeout_s") is not None else None),
            "retries": int(doc.get("retries", 1)),
        }
        if "jobs" in doc:
            jobs = doc["jobs"]
            if not isinstance(jobs, list):
                raise ValueError("spec 'jobs' must be a list")
            return cls(jobs=tuple(JobSpec.from_dict(j) for j in jobs), **policy)
        if "matrix" in doc:
            matrix = doc["matrix"]
            if not isinstance(matrix, dict) or not matrix.get("circuits"):
                raise ValueError("spec 'matrix' must be an object with 'circuits'")
            return cls.from_matrix(
                circuits=matrix["circuits"],
                variants=matrix.get("variants", ["baseline"]),
                seeds=matrix.get("seeds", [1]),
                widths=matrix.get("widths", [matrix.get("width")]),
                scale=float(matrix.get("scale", DEFAULT_SCALE)),
                arch=matrix.get("arch"),
                defect_rates=matrix.get("defect_rates", [None]),
                defect_seed=int(matrix.get("defect_seed", 0)),
                defect_mode=str(matrix.get("defect_mode", "uniform")),
                mission_epochs=(int(matrix["mission_epochs"])
                                if matrix.get("mission_epochs") is not None
                                else None),
                mission_policies=matrix.get(
                    "mission_policies", ["on-failure"]),
                mission_seeds=matrix.get("mission_seeds", [0]),
                mission_years=float(matrix.get("mission_years", 10.0)),
                **policy,
            )
        raise ValueError("spec needs a 'jobs' list or a 'matrix' object")

    @classmethod
    def from_file(cls, path: str) -> "BatchSpec":
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        if not isinstance(doc, dict):
            raise ValueError(f"{path}: batch spec must be a JSON object")
        return cls.from_dict(doc)

    def to_dict(self) -> Dict[str, object]:
        return {
            "jobs": [job.to_dict() for job in self.jobs],
            "workers": self.workers,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
        }

    @property
    def digest(self) -> str:
        """Identity of the *work* (jobs only, not execution policy)."""
        return digest_of([job.to_dict() for job in self.jobs])


@dataclasses.dataclass
class JobResult:
    """Outcome of one job, in plain-JSON form.

    Attributes:
        key: The producing `JobSpec.key`.
        status: ``ok`` / ``unroutable`` / ``error`` / ``timeout`` /
            ``crashed`` / ``stalled`` (heartbeat-silent worker soft-
            killed by the supervisor before its hard timeout).
        qor: Quality-of-result scalars (wirelength, iterations,
            channel_width, critical_path_s, ...).  Deterministic for a
            given spec — the determinism suite compares these exactly.
        digests: sha256 hexdigests of the bulky artefacts:
            ``routing_trees``, ``bitstream``, ``qor``.
        error: Failure detail for non-ok statuses.
        attempts: Executions needed (> 1 after crash retries).
        wall_s: Job wall time (timing only — excluded from identity).
    """

    key: str
    status: str
    qor: Dict[str, object] = dataclasses.field(default_factory=dict)
    digests: Dict[str, str] = dataclasses.field(default_factory=dict)
    error: Optional[str] = None
    attempts: int = 1
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def identity(self) -> Dict[str, object]:
        """The deterministic portion (what bit-identity is judged on)."""
        return {"key": self.key, "status": self.status, "qor": self.qor,
                "digests": self.digests}

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "status": self.status,
            "qor": self.qor,
            "digests": self.digests,
            "error": self.error,
            "attempts": self.attempts,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "JobResult":
        return cls(
            key=str(doc["key"]),
            status=str(doc["status"]),
            qor=dict(doc.get("qor") or {}),
            digests=dict(doc.get("digests") or {}),
            error=doc.get("error"),
            attempts=int(doc.get("attempts", 1)),
            wall_s=float(doc.get("wall_s", 0.0)),
        )


def results_identical(a: Sequence[JobResult], b: Sequence[JobResult]) -> bool:
    """True when two executions produced bit-identical results."""
    return [r.identity() for r in a] == [r.identity() for r in b]
