"""Batch execution: fan a `BatchSpec` over a worker-process pool.

Design choices, in the order they matter:

*Determinism first.*  Jobs are independent (each worker recomputes or
inherits its inputs; nothing flows between jobs), launched in spec
order, and reported in spec order — completion order never leaks into
results or merged telemetry.  The executor's promise, enforced by
``tests/runner/test_determinism.py``: `run_batch` with N workers is
bit-identical to `run_batch` with 1 worker.

*Process-per-job.*  Each job attempt is one short-lived
`multiprocessing.Process` writing its result and telemetry shard as
files.  Compared to a persistent pool this costs one fork per job —
noise next to a P&R run — and buys clean failure semantics: a crash
is a dead process with no result file (relaunch, bounded by
``retries``), a timeout is a deadline passed (terminate + kill), and
neither can poison a shared worker or deadlock a result queue.

*Fork pre-warm.*  On fork platforms the parent pre-builds netlists,
packings and fixed-width FabricIRs before launching anything; workers
inherit them copy-on-write and start at placement.  Under spawn the
same code runs with cold caches — slower, never different.

``workers=1`` degrades gracefully: jobs run in-process through the
same `run_job` path and write the same shard files, so the serial arm
of any comparison exercises the identical code and produces the
identical merged-telemetry structure.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import tempfile
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..obs import (
    SCHEMA_VERSION,
    EventPublisher,
    LiveDisplay,
    MetricsRegistry,
    TelemetryCollector,
    TraceContext,
    get_logger,
    get_tracer,
    kv,
    merge_shards,
    run_manifest,
    telemetry_records,
    write_jsonl,
)
from .spec import BatchSpec, JobResult, JobSpec
from .worker import finish_job_stream, job_process_main, prewarm_job, run_job

_log = get_logger("runner.executor")

#: Poll interval for the supervision loop (s).  Jobs are seconds-long;
#: 20 ms keeps latency negligible without busy-waiting.
_POLL_S = 0.02

#: Base delay before relaunching a crashed attempt (s).  Small enough
#: that a single flaky crash costs nothing noticeable, large enough
#: that a correlated crash burst (OOM killer, full disk) does not
#: relaunch every victim in the same scheduler tick.
DEFAULT_RETRY_BACKOFF_S = 0.05


def retry_delay_s(key: str, retry: int,
                  base_s: float = DEFAULT_RETRY_BACKOFF_S) -> float:
    """Deterministic seeded-jitter backoff before crash-retry ``retry``.

    Exponential in the retry number with a jitter factor in [0.5, 1.5)
    drawn from sha256(job key, retry) — a pure function of the job and
    the attempt, so two runs of the same batch back off identically
    (retried results stay bit-identical and schedules reproducible)
    while distinct jobs crashing together spread out instead of
    relaunching in lockstep.
    """
    if retry < 1:
        return 0.0
    digest = hashlib.sha256(f"{key}\x00{retry}".encode("utf-8")).digest()
    jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return base_s * (2.0 ** (retry - 1)) * jitter


@dataclasses.dataclass
class BatchResult:
    """Everything one batch execution produced.

    Attributes:
        results: One `JobResult` per job, in spec order.
        wall_s: Whole-batch wall time.
        workers: Worker processes actually used.
        metrics_path: Merged schema-v1 run file, when telemetry was
            requested.
        shard_dir: Where per-job shards/results were written.
        collector: The live `TelemetryCollector`, when ``live`` was on.
        stream_identical: Whether the live-collected run model matched
            the post-hoc shard merge byte for byte (None when the
            comparison didn't run — needs both ``live`` and
            ``metrics_out``).
        ingest: The warehouse `IngestResult` when ``ingest_db`` was
            given (None otherwise).
        cached: Keys served straight from the result store (their jobs
            never executed), in spec order.
        store_stats: Supervisor-side store counters for this batch
            (``hits``/``misses``/``published``) when a store was in
            play, else None.
    """

    results: List[JobResult]
    wall_s: float
    workers: int
    metrics_path: Optional[str] = None
    shard_dir: Optional[str] = None
    collector: Optional[TelemetryCollector] = None
    stream_identical: Optional[bool] = None
    ingest: Optional[object] = None
    cached: List[str] = dataclasses.field(default_factory=list)
    store_stats: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def by_key(self) -> Dict[str, JobResult]:
        return {result.key: result for result in self.results}

    def summary(self) -> Dict[str, object]:
        statuses: Dict[str, int] = {}
        for result in self.results:
            statuses[result.status] = statuses.get(result.status, 0) + 1
        summary: Dict[str, object] = {
            "jobs": len(self.results),
            "ok": statuses.get("ok", 0),
            "statuses": statuses,
            "wall_s": self.wall_s,
            "workers": self.workers,
            "success": self.ok,
        }
        if self.store_stats is not None:
            summary["cached"] = len(self.cached)
            summary["store"] = dict(self.store_stats)
        return summary


def _mp_context():
    """Fork where available (pre-warm inheritance), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclasses.dataclass
class _Attempt:
    """One live worker process and its bookkeeping."""

    index: int
    spec: JobSpec
    attempt: int
    process: object
    started: float
    deadline: Optional[float]


def _shard_path(shard_dir: str, index: int) -> str:
    return os.path.join(shard_dir, f"job-{index:04d}.jsonl")


def _result_path(shard_dir: str, index: int) -> str:
    return os.path.join(shard_dir, f"job-{index:04d}.result.jsonl")


def _read_result(path: str) -> Optional[JobResult]:
    from ..obs import read_jsonl

    try:
        records = read_jsonl(path, strict=False)
    except OSError:
        return None
    return JobResult.from_dict(records[0]) if records else None


def _job_trace(trace_id: str, parent_span_id: Optional[str],
               index: int) -> TraceContext:
    """Span-identity context for job ``index`` — always applied, live
    or not, so span ids never depend on whether anyone is watching."""
    return TraceContext(trace_id=trace_id, parent_span_id=parent_span_id,
                        span_prefix=f"j{index}.")


def _cached_job_records(spec: JobSpec, result: JobResult,
                        trace: TraceContext) -> List[Dict[str, object]]:
    """Shard-equivalent records for a store cache hit.

    A hit skips execution, but reports and the warehouse still expect
    one ``batch.job`` span per job — so the supervisor emits a
    *synthetic* one, built through the real tracer/registry machinery
    (same record shape and span ids as an executed job: ``j<i>.s1``),
    flagged ``cached=True`` with ``attempt=0``.  The metrics snapshot
    carries a ``store.hits`` counter, so merged run counters sum to
    the batch's hit count.
    """
    tracer = trace.make_tracer(None)
    registry = MetricsRegistry()
    registry.counter("store.hits").inc()
    with tracer.span("batch.job", job=spec.key, circuit=spec.circuit,
                     variant=spec.variant, seed=spec.seed, attempt=0,
                     cached=True) as span:
        span.set_many(status=result.status,
                      wirelength=result.qor.get("wirelength"))
    return telemetry_records(manifest=None, tracer=tracer, registry=registry)


def _run_serial(
    spec: BatchSpec,
    shard_dir: str,
    progress: Optional[Callable[[JobResult, int, int], None]],
    trace_id: str,
    parent_span_id: Optional[str],
    collector: Optional[TelemetryCollector] = None,
    display: Optional[LiveDisplay] = None,
    profile: bool = False,
    heartbeat_s: float = 0.2,
    store=None,
    skip: Optional[Set[int]] = None,
    done_base: int = 0,
    backoff_base_s: float = DEFAULT_RETRY_BACKOFF_S,
) -> Dict[int, JobResult]:
    # In-process streaming goes through a thread-safe local queue (the
    # heartbeat daemon is the second producer) pumped between jobs —
    # workers=1 gets the same event plane, just with coarser refresh.
    import queue as queue_mod

    sink = queue_mod.Queue() if collector is not None else None
    results: Dict[int, JobResult] = {}
    done = done_base
    for index, job in enumerate(spec.jobs):
        if skip and index in skip:
            continue
        trace = _job_trace(trace_id, parent_span_id, index)
        attempt, result, publisher = 1, None, None
        while True:
            if collector is not None:
                collector.expect(job.key, index)
                publisher = EventPublisher(sink, job=job.key, index=index)
            try:
                result, records = run_job(job, attempt=attempt, trace=trace,
                                          publisher=publisher,
                                          profile=profile,
                                          heartbeat_s=heartbeat_s,
                                          store=store)
            except SystemExit:
                # In-process stand-in for a worker crash (fault
                # injection); honour the retry budget like the pool.
                result, records = None, None
            if result is not None or attempt > spec.retries:
                break
            attempt += 1
            time.sleep(retry_delay_s(job.key, attempt - 1, backoff_base_s))
        if result is None:
            result = JobResult(key=job.key, status="crashed",
                               error="worker exited without a result",
                               attempts=attempt)
            records = []
        write_jsonl(_shard_path(shard_dir, index), records or [])
        if records:
            finish_job_stream(publisher, result, records)
        if collector is not None:
            collector.pump(sink)
            collector.mark_done(job.key, result.status)
            if display is not None:
                display.tick(collector)
        results[index] = result
        done += 1
        if progress is not None:
            progress(result, done, len(spec.jobs))
    return results


def _run_pool(
    spec: BatchSpec,
    shard_dir: str,
    workers: int,
    progress: Optional[Callable[[JobResult, int, int], None]],
    trace_id: str,
    parent_span_id: Optional[str],
    collector: Optional[TelemetryCollector] = None,
    display: Optional[LiveDisplay] = None,
    profile: bool = False,
    heartbeat_s: float = 0.2,
    stall_after_s: Optional[float] = None,
    stall_kill: bool = False,
    store_doc: Optional[Dict[str, object]] = None,
    skip: Optional[Set[int]] = None,
    done_base: int = 0,
    backoff_base_s: float = DEFAULT_RETRY_BACKOFF_S,
) -> Dict[int, JobResult]:
    ctx = _mp_context()
    event_queue = ctx.Queue() if collector is not None else None
    # Pending entries carry a not-before instant: 0.0 for fresh jobs,
    # the seeded-jitter backoff deadline for crash retries.
    pending: List[Tuple[int, JobSpec, int, float]] = [
        (index, job, 1, 0.0) for index, job in enumerate(spec.jobs)
        if not (skip and index in skip)
    ]
    pending.reverse()  # popping from the tail serves jobs in spec order
    running: List[_Attempt] = []
    results: Dict[int, JobResult] = {}
    done = done_base

    def pop_ready() -> Optional[Tuple[int, JobSpec, int]]:
        now = time.perf_counter()
        for slot in range(len(pending) - 1, -1, -1):
            index, job, attempt, not_before = pending[slot]
            if not_before <= now:
                del pending[slot]
                return index, job, attempt
        return None

    def launch(index: int, job: JobSpec, attempt: int) -> None:
        trace = _job_trace(trace_id, parent_span_id, index)
        process = ctx.Process(
            target=job_process_main,
            args=(job.to_dict(), attempt,
                  _result_path(shard_dir, index), _shard_path(shard_dir, index)),
            kwargs={"trace_doc": trace.to_dict(), "event_queue": event_queue,
                    "profile": profile, "heartbeat_s": heartbeat_s,
                    "index": index, "store_doc": store_doc},
            daemon=True,
        )
        process.start()
        now = time.perf_counter()
        deadline = now + spec.timeout_s if spec.timeout_s is not None else None
        if collector is not None:
            collector.expect(job.key, index)
        running.append(_Attempt(index=index, spec=job, attempt=attempt,
                                process=process, started=now, deadline=deadline))

    def settle(attempt: _Attempt, result: Optional[JobResult],
               failure: str, error: str) -> None:
        nonlocal done
        if result is None and failure == "crashed" and attempt.attempt <= spec.retries:
            delay = retry_delay_s(attempt.spec.key, attempt.attempt,
                                  backoff_base_s)
            _log.info("retrying job %s", kv(job=attempt.spec.key,
                                            attempt=attempt.attempt + 1,
                                            backoff_s=round(delay, 4)))
            pending.append((attempt.index, attempt.spec, attempt.attempt + 1,
                            time.perf_counter() + delay))
            return
        if result is None:
            result = JobResult(key=attempt.spec.key, status=failure,
                               error=error, attempts=attempt.attempt,
                               wall_s=time.perf_counter() - attempt.started)
        if collector is not None:
            collector.mark_done(attempt.spec.key, result.status)
        results[attempt.index] = result
        done += 1
        if progress is not None:
            progress(result, done, len(spec.jobs))

    def soft_kill(attempt: _Attempt, failure: str, error: str) -> None:
        process = attempt.process
        process.terminate()
        process.join(1.0)
        if process.is_alive():  # pragma: no cover - stubborn child
            process.kill()
            process.join()
        settle(attempt, None, failure, error)

    while pending or running:
        while pending and len(running) < workers:
            ready = pop_ready()
            if ready is None:  # everything launchable is backing off
                break
            launch(*ready)
        time.sleep(_POLL_S)
        stalled_keys: set = set()
        if collector is not None:
            collector.pump(event_queue)
            if stall_after_s is not None:
                stalled_keys = {state.key
                                for state in collector.stalled(stall_after_s)}
            if display is not None:
                display.tick(collector)
        still_running: List[_Attempt] = []
        for attempt in running:
            process = attempt.process
            if not process.is_alive():
                process.join()
                # The atomically-replaced result file is the commit
                # point: if it parses, the job finished — a nonzero
                # exit after that is interpreter-teardown noise.
                result = _read_result(_result_path(shard_dir, attempt.index))
                if result is not None:
                    settle(attempt, result, "", "")
                else:
                    settle(attempt, None, "crashed",
                           f"worker exited with code {process.exitcode} "
                           "before writing a result")
            elif attempt.deadline is not None and time.perf_counter() > attempt.deadline:
                soft_kill(attempt, "timeout",
                          f"job exceeded timeout of {spec.timeout_s:g}s")
            elif stall_kill and attempt.spec.key in stalled_keys:
                _log.info("stall-killing job %s",
                          kv(job=attempt.spec.key,
                             silent_s=round(stall_after_s, 3)))
                soft_kill(attempt, "stalled",
                          f"no telemetry heartbeat for {stall_after_s:g}s "
                          "(soft-killed before the hard timeout)")
            else:
                still_running.append(attempt)
        running = still_running
    if collector is not None:
        # Late events (a bye racing the process exit) are still queued.
        collector.pump(event_queue)
        if display is not None:
            display.tick(collector, force=True)
    return results


def run_batch(
    spec: BatchSpec,
    workers: Optional[int] = None,
    shard_dir: Optional[str] = None,
    metrics_out: Optional[str] = None,
    manifest_extra: Optional[Dict[str, object]] = None,
    progress: Optional[Callable[[JobResult, int, int], None]] = None,
    prewarm: bool = True,
    live: bool = False,
    profile: bool = False,
    display: Optional[LiveDisplay] = None,
    heartbeat_s: float = 0.2,
    stall_after_s: Optional[float] = None,
    stall_kill: bool = False,
    ingest_db: Optional[str] = None,
    store=None,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
) -> BatchResult:
    """Execute a batch; results come back in spec order.

    Args:
        spec: The job matrix + execution policy.
        workers: Override ``spec.workers``.
        shard_dir: Directory for per-job shard/result files (a
            temporary directory is created when omitted).
        metrics_out: Write the merged schema-v1 telemetry run here.
        manifest_extra: Extra manifest fields for the merged run.
        progress: Callback ``(result, done, total)`` per finished job.
        prewarm: Build netlists/packings/fixed-width fabrics in the
            parent before launching workers (fork platforms inherit
            them; harmless elsewhere).
        live: Stream worker telemetry to a supervisor-side
            `TelemetryCollector` (returned on the result) and refresh
            a `LiveDisplay` while jobs run.
        profile: Attach the sampling profiler to every job's root span.
        display: Live view override (defaults to stderr when ``live``).
        heartbeat_s: Worker heartbeat interval.
        stall_after_s: Flag a worker whose stream has been silent this
            long; with ``stall_kill`` it is terminated with status
            ``"stalled"`` instead of waiting for the hard timeout.
        stall_kill: Soft-kill flagged stalled workers (pool mode only).
        ingest_db: Ingest the merged run into this telemetry warehouse
            (sqlite, see `repro.obs.store`) after the shard merge;
            needs ``metrics_out``.  Idempotent per run content.
        store: A `repro.store.ResultStore` (or a path, opened with the
            current code digest).  Jobs whose result is already stored
            are *not executed*: the supervisor settles them up front
            with a synthetic ``batch.job`` span (``cached=True``) so
            reports, telemetry and the live stream stay coherent, and
            the cached `JobResult` is returned bit-identical to a
            recomputed one.  Fresh cacheable results are published
            back after the run; when the store carries size bounds,
            GC runs once after publication.
        retry_backoff_s: Base for the deterministic seeded-jitter
            backoff before crash retries (`retry_delay_s`).
    """
    workers = spec.workers if workers is None else workers
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if ingest_db and not metrics_out:
        raise ValueError("ingest_db needs metrics_out (nothing to ingest)")
    workers = min(workers, len(spec.jobs))
    if shard_dir is None:
        shard_dir = tempfile.mkdtemp(prefix="repro-batch-")
    os.makedirs(shard_dir, exist_ok=True)
    collector = TelemetryCollector() if live else None
    if live and display is None:
        display = LiveDisplay(stall_after_s=stall_after_s)
    if isinstance(store, str):
        from ..store import ResultStore

        store = ResultStore(store)

    start = time.perf_counter()
    # Store precheck, before any prewarm: a warm store turns the whole
    # batch into lookups, so the (expensive) parent-side warm-up must
    # only cover jobs that will actually execute.
    cached: Dict[int, JobResult] = {}
    if store is not None:
        for index, job in enumerate(spec.jobs):
            hit = store.get(job)
            if hit is not None:
                cached[index] = hit
    if prewarm:
        seen = set()
        for index, job in enumerate(spec.jobs):
            warm_key = (job.circuit, job.scale, job.width, job.arch)
            if warm_key in seen or job.fault or index in cached:
                continue
            seen.add(warm_key)
            prewarm_job(job)
    _log.info("batch start %s", kv(jobs=len(spec.jobs), workers=workers,
                                   shard_dir=shard_dir, live=live,
                                   cached=len(cached)))
    trace_id = f"batch-{spec.digest[:12]}"
    with get_tracer().span("batch.run", trace=trace_id, jobs=len(spec.jobs),
                           workers=workers, cached=len(cached)) as batch_span:
        parent_span_id = batch_span.span_id
        # Settle cache hits first, in spec order: synthetic shard on
        # disk, identical records injected into the live collector, so
        # the post-hoc merge and the stream agree byte for byte.
        done = 0
        for index in sorted(cached):
            job, result = spec.jobs[index], cached[index]
            records = _cached_job_records(
                job, result, _job_trace(trace_id, parent_span_id, index))
            write_jsonl(_shard_path(shard_dir, index), records)
            if collector is not None:
                collector.inject_records(job.key, records,
                                         status=result.status, index=index)
                if display is not None:
                    display.tick(collector)
            done += 1
            if progress is not None:
                progress(result, done, len(spec.jobs))
        skip = set(cached)
        workers = max(1, min(workers, len(spec.jobs) - len(cached))) \
            if len(cached) < len(spec.jobs) else 1
        if workers == 1:
            executed = _run_serial(spec, shard_dir, progress,
                                   trace_id, parent_span_id,
                                   collector=collector, display=display,
                                   profile=profile, heartbeat_s=heartbeat_s,
                                   store=store, skip=skip, done_base=done,
                                   backoff_base_s=retry_backoff_s)
        else:
            executed = _run_pool(spec, shard_dir, workers, progress,
                                 trace_id, parent_span_id,
                                 collector=collector, display=display,
                                 profile=profile, heartbeat_s=heartbeat_s,
                                 stall_after_s=stall_after_s,
                                 stall_kill=stall_kill,
                                 store_doc=store.to_doc() if store else None,
                                 skip=skip, done_base=done,
                                 backoff_base_s=retry_backoff_s)
    by_index = dict(cached)
    by_index.update(executed)
    results = [by_index[index] for index in range(len(spec.jobs))]
    published = 0
    if store is not None:
        for index, result in executed.items():
            try:
                if store.put(spec.jobs[index], result):
                    published += 1
            except (OSError, ValueError):  # pragma: no cover - a full
                # disk must degrade to an unwarmed store, not a failure
                pass
        if store.max_bytes is not None or store.max_entries is not None:
            store.gc()
    wall_s = time.perf_counter() - start
    if display is not None and collector is not None:
        display.close(collector)

    store_stats = None
    if store is not None:
        store_stats = {"hits": len(cached),
                       "misses": len(executed),
                       "published": published}
    metrics_path = None
    stream_identical = None
    ingest = None
    if metrics_out:
        batch_doc: Dict[str, object] = {
            "jobs": len(spec.jobs),
            "workers": workers,
            "spec_digest": spec.digest,
            "job_keys": [job.key for job in spec.jobs],
        }
        if store_stats is not None:
            batch_doc["store"] = {**store_stats, "code": store.code[:12]}
        manifest = run_manifest(extra={
            "batch": batch_doc,
            **(manifest_extra or {}),
        })
        shard_paths = [_shard_path(shard_dir, i) for i in range(len(spec.jobs))]
        merge_shards(shard_paths, manifest, metrics_out)
        metrics_path = metrics_out
        if collector is not None:
            stream_identical = _stream_matches_merge(
                collector, manifest, [job.key for job in spec.jobs],
                metrics_out)
            if not stream_identical:
                _log.info("live stream diverged from shard merge %s",
                          kv(path=metrics_out))
        if ingest_db:
            # Imported here, not at module top: the warehouse pulls in
            # the whole analyze layer, which workers never need.
            from ..obs import store

            con = store.connect(ingest_db)
            try:
                ingest = store.ingest_file(con, metrics_out, label="batch")
            finally:
                con.close()
            _log.info("batch telemetry ingested %s",
                      kv(db=ingest_db, run_id=ingest.run_id,
                         inserted=ingest.inserted,
                         digest=ingest.digest[:12]))
    _log.info("batch done %s", kv(jobs=len(spec.jobs), wall_s=round(wall_s, 3),
                                  ok=sum(r.ok for r in results),
                                  cached=len(cached)))
    return BatchResult(results=results, wall_s=wall_s, workers=workers,
                       metrics_path=metrics_path, shard_dir=shard_dir,
                       collector=collector, stream_identical=stream_identical,
                       ingest=ingest,
                       cached=[spec.jobs[i].key for i in sorted(cached)],
                       store_stats=store_stats)


def _stream_matches_merge(collector: TelemetryCollector,
                          manifest: Dict[str, object],
                          job_keys: List[str],
                          merged_path: str) -> bool:
    """Byte-compare the live run model against the merged shard file.

    Both sides assemble through `repro.obs.shards.assemble_run` and
    serialise with the same sorted-key dumps, so on a healthy run this
    is an equality of identical pipelines — any divergence (dropped
    events, a bye/shard race) is a real observability bug or loss,
    surfaced via `BatchResult.stream_identical`.
    """
    live_lines = [json.dumps(record, sort_keys=True)
                  for record in collector.run_records(manifest, job_keys)]
    try:
        with open(merged_path, "r", encoding="utf-8") as handle:
            file_lines = [line.rstrip("\n") for line in handle if line.strip()]
    except OSError:  # pragma: no cover - we just wrote it
        return False
    return live_lines == file_lines


def run_single_job(
    spec: JobSpec,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    shard_dir: Optional[str] = None,
    index: int = 0,
    trace: Optional[TraceContext] = None,
    event_queue=None,
    store=None,
    profile: bool = False,
    heartbeat_s: float = 0.2,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
) -> JobResult:
    """Execute one job in a worker process; the serve dispatch path.

    The same process-per-attempt contract as `_run_pool`, minus the
    batching: crash means relaunch (bounded by ``retries``, after the
    seeded backoff), timeout means terminate + ``"timeout"``.  The
    worker gets the store handle (``store``) so a result published
    between enqueue and execution — another client's identical job
    finishing first — is still honoured, and it publishes its own
    fresh result back.  ``event_queue`` receives the worker's live
    telemetry events for the caller to pump into a collector.
    """
    if shard_dir is None:
        shard_dir = tempfile.mkdtemp(prefix="repro-job-")
    os.makedirs(shard_dir, exist_ok=True)
    if isinstance(store, str):
        from ..store import ResultStore

        store = ResultStore(store)
    if store is not None:
        hit = store.get(spec)
        if hit is not None:
            return hit
    ctx = _mp_context()
    trace = trace or TraceContext(trace_id=f"job-{spec.key}",
                                  span_prefix=f"j{index}.")
    attempt = 1
    while True:
        result_path = _result_path(shard_dir, index)
        try:
            os.remove(result_path)
        except OSError:
            pass
        process = ctx.Process(
            target=job_process_main,
            args=(spec.to_dict(), attempt, result_path,
                  _shard_path(shard_dir, index)),
            kwargs={"trace_doc": trace.to_dict(), "event_queue": event_queue,
                    "profile": profile, "heartbeat_s": heartbeat_s,
                    "index": index,
                    "store_doc": store.to_doc() if store else None},
            daemon=True,
        )
        process.start()
        deadline = (time.perf_counter() + timeout_s
                    if timeout_s is not None else None)
        started = time.perf_counter()
        while process.is_alive():
            if deadline is not None and time.perf_counter() > deadline:
                process.terminate()
                process.join(1.0)
                if process.is_alive():  # pragma: no cover - stubborn child
                    process.kill()
                    process.join()
                return JobResult(
                    key=spec.key, status="timeout",
                    error=f"job exceeded timeout of {timeout_s:g}s",
                    attempts=attempt,
                    wall_s=time.perf_counter() - started)
            time.sleep(_POLL_S)
        process.join()
        # Result-file existence is the commit point (see _run_pool).
        result = _read_result(result_path)
        if result is not None:
            return result
        if attempt > retries:
            return JobResult(
                key=spec.key, status="crashed",
                error=f"worker exited with code {process.exitcode} "
                      "before writing a result",
                attempts=attempt,
                wall_s=time.perf_counter() - started)
        time.sleep(retry_delay_s(spec.key, attempt, retry_backoff_s))
        attempt += 1


# Re-exported for manifest consumers (`repro batch --json` embeds it).
__all__ = ["BatchResult", "run_batch", "run_single_job", "retry_delay_s",
           "SCHEMA_VERSION"]
