"""Batch execution: fan a `BatchSpec` over a worker-process pool.

Design choices, in the order they matter:

*Determinism first.*  Jobs are independent (each worker recomputes or
inherits its inputs; nothing flows between jobs), launched in spec
order, and reported in spec order — completion order never leaks into
results or merged telemetry.  The executor's promise, enforced by
``tests/runner/test_determinism.py``: `run_batch` with N workers is
bit-identical to `run_batch` with 1 worker.

*Process-per-job.*  Each job attempt is one short-lived
`multiprocessing.Process` writing its result and telemetry shard as
files.  Compared to a persistent pool this costs one fork per job —
noise next to a P&R run — and buys clean failure semantics: a crash
is a dead process with no result file (relaunch, bounded by
``retries``), a timeout is a deadline passed (terminate + kill), and
neither can poison a shared worker or deadlock a result queue.

*Fork pre-warm.*  On fork platforms the parent pre-builds netlists,
packings and fixed-width FabricIRs before launching anything; workers
inherit them copy-on-write and start at placement.  Under spawn the
same code runs with cold caches — slower, never different.

``workers=1`` degrades gracefully: jobs run in-process through the
same `run_job` path and write the same shard files, so the serial arm
of any comparison exercises the identical code and produces the
identical merged-telemetry structure.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import (
    SCHEMA_VERSION,
    EventPublisher,
    LiveDisplay,
    TelemetryCollector,
    TraceContext,
    get_logger,
    get_tracer,
    kv,
    merge_shards,
    run_manifest,
)
from .spec import BatchSpec, JobResult, JobSpec
from .worker import finish_job_stream, job_process_main, prewarm_job, run_job

_log = get_logger("runner.executor")

#: Poll interval for the supervision loop (s).  Jobs are seconds-long;
#: 20 ms keeps latency negligible without busy-waiting.
_POLL_S = 0.02


@dataclasses.dataclass
class BatchResult:
    """Everything one batch execution produced.

    Attributes:
        results: One `JobResult` per job, in spec order.
        wall_s: Whole-batch wall time.
        workers: Worker processes actually used.
        metrics_path: Merged schema-v1 run file, when telemetry was
            requested.
        shard_dir: Where per-job shards/results were written.
        collector: The live `TelemetryCollector`, when ``live`` was on.
        stream_identical: Whether the live-collected run model matched
            the post-hoc shard merge byte for byte (None when the
            comparison didn't run — needs both ``live`` and
            ``metrics_out``).
        ingest: The warehouse `IngestResult` when ``ingest_db`` was
            given (None otherwise).
    """

    results: List[JobResult]
    wall_s: float
    workers: int
    metrics_path: Optional[str] = None
    shard_dir: Optional[str] = None
    collector: Optional[TelemetryCollector] = None
    stream_identical: Optional[bool] = None
    ingest: Optional[object] = None

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def by_key(self) -> Dict[str, JobResult]:
        return {result.key: result for result in self.results}

    def summary(self) -> Dict[str, object]:
        statuses: Dict[str, int] = {}
        for result in self.results:
            statuses[result.status] = statuses.get(result.status, 0) + 1
        return {
            "jobs": len(self.results),
            "ok": statuses.get("ok", 0),
            "statuses": statuses,
            "wall_s": self.wall_s,
            "workers": self.workers,
            "success": self.ok,
        }


def _mp_context():
    """Fork where available (pre-warm inheritance), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclasses.dataclass
class _Attempt:
    """One live worker process and its bookkeeping."""

    index: int
    spec: JobSpec
    attempt: int
    process: object
    started: float
    deadline: Optional[float]


def _shard_path(shard_dir: str, index: int) -> str:
    return os.path.join(shard_dir, f"job-{index:04d}.jsonl")


def _result_path(shard_dir: str, index: int) -> str:
    return os.path.join(shard_dir, f"job-{index:04d}.result.jsonl")


def _read_result(path: str) -> Optional[JobResult]:
    from ..obs import read_jsonl

    try:
        records = read_jsonl(path, strict=False)
    except OSError:
        return None
    return JobResult.from_dict(records[0]) if records else None


def _job_trace(trace_id: str, parent_span_id: Optional[str],
               index: int) -> TraceContext:
    """Span-identity context for job ``index`` — always applied, live
    or not, so span ids never depend on whether anyone is watching."""
    return TraceContext(trace_id=trace_id, parent_span_id=parent_span_id,
                        span_prefix=f"j{index}.")


def _run_serial(
    spec: BatchSpec,
    shard_dir: str,
    progress: Optional[Callable[[JobResult, int, int], None]],
    trace_id: str,
    parent_span_id: Optional[str],
    collector: Optional[TelemetryCollector] = None,
    display: Optional[LiveDisplay] = None,
    profile: bool = False,
    heartbeat_s: float = 0.2,
) -> List[JobResult]:
    # In-process streaming goes through a thread-safe local queue (the
    # heartbeat daemon is the second producer) pumped between jobs —
    # workers=1 gets the same event plane, just with coarser refresh.
    import queue as queue_mod

    sink = queue_mod.Queue() if collector is not None else None
    results: List[JobResult] = []
    for index, job in enumerate(spec.jobs):
        trace = _job_trace(trace_id, parent_span_id, index)
        attempt, result, publisher = 1, None, None
        while True:
            if collector is not None:
                collector.expect(job.key, index)
                publisher = EventPublisher(sink, job=job.key, index=index)
            try:
                result, records = run_job(job, attempt=attempt, trace=trace,
                                          publisher=publisher,
                                          profile=profile,
                                          heartbeat_s=heartbeat_s)
            except SystemExit:
                # In-process stand-in for a worker crash (fault
                # injection); honour the retry budget like the pool.
                result, records = None, None
            if result is not None or attempt > spec.retries:
                break
            attempt += 1
        if result is None:
            result = JobResult(key=job.key, status="crashed",
                               error="worker exited without a result",
                               attempts=attempt)
            records = []
        from ..obs import write_jsonl

        write_jsonl(_shard_path(shard_dir, index), records or [])
        if records:
            finish_job_stream(publisher, result, records)
        if collector is not None:
            collector.pump(sink)
            collector.mark_done(job.key, result.status)
            if display is not None:
                display.tick(collector)
        results.append(result)
        if progress is not None:
            progress(result, index + 1, len(spec.jobs))
    return results


def _run_pool(
    spec: BatchSpec,
    shard_dir: str,
    workers: int,
    progress: Optional[Callable[[JobResult, int, int], None]],
    trace_id: str,
    parent_span_id: Optional[str],
    collector: Optional[TelemetryCollector] = None,
    display: Optional[LiveDisplay] = None,
    profile: bool = False,
    heartbeat_s: float = 0.2,
    stall_after_s: Optional[float] = None,
    stall_kill: bool = False,
) -> List[JobResult]:
    ctx = _mp_context()
    event_queue = ctx.Queue() if collector is not None else None
    pending: List[Tuple[int, JobSpec, int]] = [
        (index, job, 1) for index, job in enumerate(spec.jobs)
    ]
    pending.reverse()  # pop() serves jobs in spec order
    running: List[_Attempt] = []
    results: Dict[int, JobResult] = {}
    done = 0

    def launch(index: int, job: JobSpec, attempt: int) -> None:
        trace = _job_trace(trace_id, parent_span_id, index)
        process = ctx.Process(
            target=job_process_main,
            args=(job.to_dict(), attempt,
                  _result_path(shard_dir, index), _shard_path(shard_dir, index)),
            kwargs={"trace_doc": trace.to_dict(), "event_queue": event_queue,
                    "profile": profile, "heartbeat_s": heartbeat_s,
                    "index": index},
            daemon=True,
        )
        process.start()
        now = time.perf_counter()
        deadline = now + spec.timeout_s if spec.timeout_s is not None else None
        if collector is not None:
            collector.expect(job.key, index)
        running.append(_Attempt(index=index, spec=job, attempt=attempt,
                                process=process, started=now, deadline=deadline))

    def settle(attempt: _Attempt, result: Optional[JobResult],
               failure: str, error: str) -> None:
        nonlocal done
        if result is None and failure == "crashed" and attempt.attempt <= spec.retries:
            _log.info("retrying job %s", kv(job=attempt.spec.key,
                                            attempt=attempt.attempt + 1))
            pending.append((attempt.index, attempt.spec, attempt.attempt + 1))
            return
        if result is None:
            result = JobResult(key=attempt.spec.key, status=failure,
                               error=error, attempts=attempt.attempt,
                               wall_s=time.perf_counter() - attempt.started)
        if collector is not None:
            collector.mark_done(attempt.spec.key, result.status)
        results[attempt.index] = result
        done += 1
        if progress is not None:
            progress(result, done, len(spec.jobs))

    def soft_kill(attempt: _Attempt, failure: str, error: str) -> None:
        process = attempt.process
        process.terminate()
        process.join(1.0)
        if process.is_alive():  # pragma: no cover - stubborn child
            process.kill()
            process.join()
        settle(attempt, None, failure, error)

    while pending or running:
        while pending and len(running) < workers:
            launch(*pending.pop())
        time.sleep(_POLL_S)
        stalled_keys: set = set()
        if collector is not None:
            collector.pump(event_queue)
            if stall_after_s is not None:
                stalled_keys = {state.key
                                for state in collector.stalled(stall_after_s)}
            if display is not None:
                display.tick(collector)
        still_running: List[_Attempt] = []
        for attempt in running:
            process = attempt.process
            if not process.is_alive():
                process.join()
                result = _read_result(_result_path(shard_dir, attempt.index))
                if process.exitcode == 0 and result is not None:
                    settle(attempt, result, "", "")
                else:
                    settle(attempt, None, "crashed",
                           f"worker exited with code {process.exitcode} "
                           "before writing a result")
            elif attempt.deadline is not None and time.perf_counter() > attempt.deadline:
                soft_kill(attempt, "timeout",
                          f"job exceeded timeout of {spec.timeout_s:g}s")
            elif stall_kill and attempt.spec.key in stalled_keys:
                _log.info("stall-killing job %s",
                          kv(job=attempt.spec.key,
                             silent_s=round(stall_after_s, 3)))
                soft_kill(attempt, "stalled",
                          f"no telemetry heartbeat for {stall_after_s:g}s "
                          "(soft-killed before the hard timeout)")
            else:
                still_running.append(attempt)
        running = still_running
    if collector is not None:
        # Late events (a bye racing the process exit) are still queued.
        collector.pump(event_queue)
        if display is not None:
            display.tick(collector, force=True)
    return [results[index] for index in range(len(spec.jobs))]


def run_batch(
    spec: BatchSpec,
    workers: Optional[int] = None,
    shard_dir: Optional[str] = None,
    metrics_out: Optional[str] = None,
    manifest_extra: Optional[Dict[str, object]] = None,
    progress: Optional[Callable[[JobResult, int, int], None]] = None,
    prewarm: bool = True,
    live: bool = False,
    profile: bool = False,
    display: Optional[LiveDisplay] = None,
    heartbeat_s: float = 0.2,
    stall_after_s: Optional[float] = None,
    stall_kill: bool = False,
    ingest_db: Optional[str] = None,
) -> BatchResult:
    """Execute a batch; results come back in spec order.

    Args:
        spec: The job matrix + execution policy.
        workers: Override ``spec.workers``.
        shard_dir: Directory for per-job shard/result files (a
            temporary directory is created when omitted).
        metrics_out: Write the merged schema-v1 telemetry run here.
        manifest_extra: Extra manifest fields for the merged run.
        progress: Callback ``(result, done, total)`` per finished job.
        prewarm: Build netlists/packings/fixed-width fabrics in the
            parent before launching workers (fork platforms inherit
            them; harmless elsewhere).
        live: Stream worker telemetry to a supervisor-side
            `TelemetryCollector` (returned on the result) and refresh
            a `LiveDisplay` while jobs run.
        profile: Attach the sampling profiler to every job's root span.
        display: Live view override (defaults to stderr when ``live``).
        heartbeat_s: Worker heartbeat interval.
        stall_after_s: Flag a worker whose stream has been silent this
            long; with ``stall_kill`` it is terminated with status
            ``"stalled"`` instead of waiting for the hard timeout.
        stall_kill: Soft-kill flagged stalled workers (pool mode only).
        ingest_db: Ingest the merged run into this telemetry warehouse
            (sqlite, see `repro.obs.store`) after the shard merge;
            needs ``metrics_out``.  Idempotent per run content.
    """
    workers = spec.workers if workers is None else workers
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if ingest_db and not metrics_out:
        raise ValueError("ingest_db needs metrics_out (nothing to ingest)")
    workers = min(workers, len(spec.jobs))
    if shard_dir is None:
        shard_dir = tempfile.mkdtemp(prefix="repro-batch-")
    os.makedirs(shard_dir, exist_ok=True)
    collector = TelemetryCollector() if live else None
    if live and display is None:
        display = LiveDisplay(stall_after_s=stall_after_s)

    start = time.perf_counter()
    if prewarm:
        seen = set()
        for job in spec.jobs:
            warm_key = (job.circuit, job.scale, job.width, job.arch)
            if warm_key in seen or job.fault:
                continue
            seen.add(warm_key)
            prewarm_job(job)
    _log.info("batch start %s", kv(jobs=len(spec.jobs), workers=workers,
                                   shard_dir=shard_dir, live=live))
    trace_id = f"batch-{spec.digest[:12]}"
    with get_tracer().span("batch.run", trace=trace_id, jobs=len(spec.jobs),
                           workers=workers) as batch_span:
        parent_span_id = batch_span.span_id
        if workers == 1:
            results = _run_serial(spec, shard_dir, progress,
                                  trace_id, parent_span_id,
                                  collector=collector, display=display,
                                  profile=profile, heartbeat_s=heartbeat_s)
        else:
            results = _run_pool(spec, shard_dir, workers, progress,
                                trace_id, parent_span_id,
                                collector=collector, display=display,
                                profile=profile, heartbeat_s=heartbeat_s,
                                stall_after_s=stall_after_s,
                                stall_kill=stall_kill)
    wall_s = time.perf_counter() - start
    if display is not None and collector is not None:
        display.close(collector)

    metrics_path = None
    stream_identical = None
    ingest = None
    if metrics_out:
        manifest = run_manifest(extra={
            "batch": {
                "jobs": len(spec.jobs),
                "workers": workers,
                "spec_digest": spec.digest,
                "job_keys": [job.key for job in spec.jobs],
            },
            **(manifest_extra or {}),
        })
        shard_paths = [_shard_path(shard_dir, i) for i in range(len(spec.jobs))]
        merge_shards(shard_paths, manifest, metrics_out)
        metrics_path = metrics_out
        if collector is not None:
            stream_identical = _stream_matches_merge(
                collector, manifest, [job.key for job in spec.jobs],
                metrics_out)
            if not stream_identical:
                _log.info("live stream diverged from shard merge %s",
                          kv(path=metrics_out))
        if ingest_db:
            # Imported here, not at module top: the warehouse pulls in
            # the whole analyze layer, which workers never need.
            from ..obs import store

            con = store.connect(ingest_db)
            try:
                ingest = store.ingest_file(con, metrics_out, label="batch")
            finally:
                con.close()
            _log.info("batch telemetry ingested %s",
                      kv(db=ingest_db, run_id=ingest.run_id,
                         inserted=ingest.inserted,
                         digest=ingest.digest[:12]))
    _log.info("batch done %s", kv(jobs=len(spec.jobs), wall_s=round(wall_s, 3),
                                  ok=sum(r.ok for r in results)))
    return BatchResult(results=results, wall_s=wall_s, workers=workers,
                       metrics_path=metrics_path, shard_dir=shard_dir,
                       collector=collector, stream_identical=stream_identical,
                       ingest=ingest)


def _stream_matches_merge(collector: TelemetryCollector,
                          manifest: Dict[str, object],
                          job_keys: List[str],
                          merged_path: str) -> bool:
    """Byte-compare the live run model against the merged shard file.

    Both sides assemble through `repro.obs.shards.assemble_run` and
    serialise with the same sorted-key dumps, so on a healthy run this
    is an equality of identical pipelines — any divergence (dropped
    events, a bye/shard race) is a real observability bug or loss,
    surfaced via `BatchResult.stream_identical`.
    """
    live_lines = [json.dumps(record, sort_keys=True)
                  for record in collector.run_records(manifest, job_keys)]
    try:
        with open(merged_path, "r", encoding="utf-8") as handle:
            file_lines = [line.rstrip("\n") for line in handle if line.strip()]
    except OSError:  # pragma: no cover - we just wrote it
        return False
    return live_lines == file_lines


# Re-exported for manifest consumers (`repro batch --json` embeds it).
__all__ = ["BatchResult", "run_batch", "SCHEMA_VERSION"]
