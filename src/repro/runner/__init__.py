"""Parallel batch flow runner with determinism guarantees.

Fans a job matrix of (circuit x variant x seed x arch) out over a
worker-process pool — the workload shape of the paper's Fig. 12
suite evaluation — and produces results bit-identical to serial
execution.  See DESIGN.md Sec. 5d for the architecture and the
determinism contract.

    from repro.runner import BatchSpec, run_batch

    spec = BatchSpec.from_matrix(
        circuits=["tseng", "alu4"], variants=["baseline", "nem-opt"],
        seeds=[1], widths=[56], scale=0.03, workers=4,
    )
    batch = run_batch(spec, metrics_out="batch.jsonl")
    assert batch.ok

Modules:

* `spec`     — `JobSpec` / `BatchSpec` / `JobResult`, stable job keys
* `worker`   — per-job execution under job-local telemetry
* `executor` — the pool supervisor (`run_batch`): timeouts, crash
  retry, serial degradation, fork pre-warm, shard merge
"""

from .spec import (
    BatchSpec,
    JobResult,
    JobSpec,
    digest_of,
    parse_variant,
    results_identical,
)
from .worker import job_arch, prewarm_job, run_job
from .executor import BatchResult, run_batch

__all__ = [
    "BatchResult",
    "BatchSpec",
    "JobResult",
    "JobSpec",
    "digest_of",
    "job_arch",
    "parse_variant",
    "prewarm_job",
    "results_identical",
    "run_batch",
    "run_job",
]
