"""Worker-side job execution for the batch runner.

`run_job` executes one `JobSpec` end to end — load circuit, pack,
place, route (fixed width or Wmin search), extract + program the
relay bitstream, evaluate the requested variant — and reduces the
outcome to a plain-JSON `JobResult` (QoR scalars + sha256 digests of
the routing trees and bitstream).

Determinism contract: every step below is a pure function of the
`JobSpec` (placement RNG seeded by ``spec.seed``, router tie-breaks
seeded per graph, generator circuits seeded by the suite), so the
same spec produces the same `JobResult.identity()` whether it runs in
this process, a forked worker, or a spawned worker.  To keep the
telemetry *shards* equally deterministic in content, each job runs
under a fresh `Tracer` and a fresh `MetricsRegistry` — a forked
worker must not leak the parent's accumulated spans or counters into
its shard.

`job_process_main` is the subprocess entry point: it writes the
result and the telemetry shard as files in the batch's shard
directory (file-based hand-off survives worker crashes — a missing
result file *is* the crash signal) and exits.
"""

from __future__ import annotations

import dataclasses
import os
import time
import traceback
from typing import Dict, Optional, Tuple

from ..arch.params import ArchParams
from ..obs import (
    EventPublisher,
    HeartbeatThread,
    MetricsRegistry,
    NULL_PUBLISHER,
    StreamingTracer,
    TraceContext,
    Tracer,
    get_publisher,
    get_tracer,
    profiled,
    telemetry_records,
    use_publisher,
    use_registry,
    use_tracer,
    write_jsonl,
)
from .spec import JobResult, JobSpec, digest_of, parse_variant

#: Parent-side pre-warm caches, inherited by fork workers (empty under
#: spawn, where workers simply recompute).  Keyed so a hit is exactly
#: the object the worker would have built itself.
_NETLISTS: Dict[Tuple[str, float], object] = {}
_PACKED: Dict[Tuple[str, float, ArchParams], object] = {}


def _load_netlist(spec: JobSpec):
    from ..netlist import load_circuit

    key = (spec.circuit, spec.scale)
    netlist = _NETLISTS.get(key)
    if netlist is None:
        netlist = _NETLISTS[key] = load_circuit(spec.circuit, scale=spec.scale)
    return netlist


def job_arch(spec: JobSpec) -> ArchParams:
    """The `ArchParams` a job runs against (overrides applied)."""
    params = ArchParams(**dict(spec.arch)) if spec.arch else ArchParams()
    if spec.width is not None:
        params = params.with_channel_width(spec.width)
    return params


def prewarm_job(spec: JobSpec) -> None:
    """Parent-side warm-up: netlist, packing and the FabricIR.

    Fork workers inherit all three (the keyed fabric cache is
    process-global), so per-job work starts at placement.  Only
    fixed-width jobs can pre-warm the fabric — a Wmin job's probe
    widths are not known until the search runs.
    """
    from ..fabric import get_fabric
    from ..vpr.pack import pack
    from ..vpr.place import place

    params = job_arch(spec)
    netlist = _load_netlist(spec)
    packed_key = (spec.circuit, spec.scale, params)
    clustered = _PACKED.get(packed_key)
    if clustered is None:
        clustered = _PACKED[packed_key] = pack(netlist, params)
    if spec.width is not None:
        # Grid dims come from a placement; seed-independent, so any
        # seed serves every job of this circuit.
        placement = place(clustered, seed=spec.seed)
        get_fabric(params, placement.grid_width, placement.grid_height)


def _routing_digest(routing, channel_width: int) -> str:
    trees = {
        name: {
            "parent": sorted((int(k), int(v)) for k, v in tree.parent.items()),
            "sinks": sorted(int(s) for s in tree.sink_nodes),
        }
        for name, tree in routing.trees.items()
    }
    return digest_of({"channel_width": channel_width, "trees": trees})


def _bitstream_digest(bitstream) -> str:
    switches = {
        f"{x},{y}": [[int(u), int(v)] for u, v in edges]
        for (x, y), edges in sorted(bitstream.switches_by_tile.items())
    }
    return digest_of(switches)


def _variant_for(spec: JobSpec, params: ArchParams):
    from ..core import baseline_variant, naive_nem_variant, optimized_nem_variant

    name, downsize = parse_variant(spec.variant)
    if name == "baseline":
        return baseline_variant(params)
    if name == "nem-naive":
        return naive_nem_variant(params)
    return optimized_nem_variant(params, downsize)


def _inject_fault(spec: JobSpec, attempt: int) -> None:
    """Test instrumentation (see `JobSpec.fault`)."""
    if not spec.fault:
        return
    if spec.fault == "crash" or (spec.fault == "crash-first" and attempt == 1):
        # SystemExit: multiprocessing's bootstrap turns it into a
        # nonzero exitcode (no result file -> crash), and the serial
        # path can intercept it without dying.
        raise SystemExit(87)
    if spec.fault == "hang":
        time.sleep(3600.0)
    if spec.fault == "stall":
        # A live-but-silent worker: the process keeps running (so the
        # pool sees a healthy child) while every event — including the
        # heartbeat thread's — goes mute.  Only heartbeat-age stall
        # detection can catch this before the hard timeout.
        get_publisher().silence()
        time.sleep(3600.0)
    if spec.fault == "fail":
        raise RuntimeError(f"injected fault for {spec.key}")


def _execute(spec: JobSpec, attempt: int) -> JobResult:
    from ..config.bitstream import extract_bitstream, program_fabric
    from ..core import Comparison, baseline_variant, evaluate_design
    from ..vpr.flow import run_flow, run_flow_min_width

    _inject_fault(spec, attempt)
    params = job_arch(spec)
    netlist = _load_netlist(spec)
    if spec.width is not None:
        flow = run_flow(netlist, params, seed=spec.seed)
    else:
        flow = run_flow_min_width(netlist, params, seed=spec.seed)
    qor: Dict[str, object] = {
        "clusters": flow.clustered.num_clusters,
        "placement_cost": flow.placement.cost,
        "channel_width": flow.channel_width,
        "grid": [flow.placement.grid_width, flow.placement.grid_height],
        "iterations": flow.routing.iterations,
        "overused_nodes": flow.routing.overused_nodes,
        "wirelength": flow.routing.wirelength,
    }
    if not flow.success:
        return JobResult(
            key=spec.key, status="unroutable", qor=qor,
            digests={"routing_trees": _routing_digest(flow.routing,
                                                      flow.channel_width)},
            error=f"unroutable at W={flow.channel_width}", attempts=attempt,
        )

    extra_digests: Dict[str, str] = {}
    if spec.defect_rate is not None:
        from ..faults import FaultCampaign, repair_routing

        campaign = FaultCampaign(
            seed=spec.defect_seed, mode=spec.defect_mode,
            stuck_open_rate=spec.defect_rate,
        )
        defect_map = campaign.for_fabric(flow.graph)
        repair = repair_routing(
            flow.placement, flow.routing, defect_map,
            graph=flow.graph, campaign=campaign,
        )
        qor.update({
            "defects": defect_map.total,
            "repair.stage": repair.stage,
            "repair.stage_index": repair.stage_index,
            "repair.victims": len(repair.victim_nets),
            "repair.nets_ripped": repair.nets_ripped,
            "repair.channel_width": repair.channel_width,
            "repair.wirelength": repair.routing.wirelength,
        })
        extra_digests["defect_map"] = defect_map.digest
        extra_digests["repaired_trees"] = _routing_digest(
            repair.routing, repair.channel_width)
        extra_digests["clean_trees"] = _routing_digest(
            flow.routing, flow.channel_width)
        if not repair.success:
            qor["repair.success"] = False
            return JobResult(
                key=spec.key, status="unrepairable", qor=qor,
                digests=extra_digests,
                error=(f"repair failed at rate={spec.defect_rate} "
                       f"(stage ladder exhausted)"),
                attempts=attempt,
            )
        qor["repair.success"] = True
        # Downstream stages consume the *repaired* design: the
        # bitstream must program only healthy relays.
        if repair.channel_width != flow.channel_width:
            params = params.with_channel_width(repair.channel_width)
        flow = flow.with_routing(
            repair.routing, repair.graph, repair.channel_width)

    if spec.mission_epochs is not None:
        from ..faults.mission import MissionSpec, simulate_mission

        mission_spec = MissionSpec(
            epochs=spec.mission_epochs, years=spec.mission_years,
            policy=spec.mission_policy, campaigns=1,
            base_seed=spec.mission_seed)
        mission = simulate_mission(flow, mission_spec)
        trajectory = mission.trajectories[0]
        curve = mission.degradation_curve()
        qor.update({
            "mission.policy": spec.mission_policy,
            "mission.epochs": spec.mission_epochs,
            "mission.years": spec.mission_years,
            "mission.final_yield": curve[-1]["yield"] if curve else 0.0,
            "mission.final_channel_width": trajectory.final_channel_width,
            "mission.repairs": trajectory.repairs,
            "mission.bist_runs": trajectory.bist_runs,
            "mission.failed_epoch": trajectory.failed_epoch,
            "mission.ttf_years": mission.time_to_first_unrepairable,
            "mission.curve": [r.to_dict() for r in trajectory.records],
        })
        extra_digests["mission_curve"] = mission.digest
        # The mission is a lifetime overlay: downstream stages still
        # evaluate the clean design (epoch zero), so the bitstream and
        # QoR digests below stay comparable with mission-free jobs.

    with get_tracer().span("flow.configure", circuit=netlist.name):
        bitstream = extract_bitstream(flow.routing, flow.graph)
        config = program_fabric(bitstream)
    qor.update(
        bitstream_switches=bitstream.total_switches,
        arrays_programmed=config.arrays_programmed,
        relays_closed=config.relays_closed,
        row_steps=config.row_steps,
        config_success=config.success,
    )

    base = evaluate_design(flow, baseline_variant(params))
    point = base
    if spec.variant != "baseline":
        point = evaluate_design(flow, _variant_for(spec, params),
                                frequency=base.frequency)
        cmp = Comparison.of(base, point)
        qor.update({f"vs_baseline.{k}": v
                    for k, v in dataclasses.asdict(cmp).items()})
    qor.update(
        critical_path_s=point.critical_path,
        frequency_hz=point.frequency,
        dynamic_w=point.total_dynamic,
        leakage_w=point.total_leakage,
        tile_footprint_m2=point.tile_footprint_m2,
    )

    digests = {
        "routing_trees": _routing_digest(flow.routing, flow.channel_width),
        "bitstream": _bitstream_digest(bitstream),
    }
    digests.update(extra_digests)
    digests["qor"] = digest_of(qor)
    return JobResult(key=spec.key, status="ok", qor=qor, digests=digests,
                     attempts=attempt)


def run_job(spec: JobSpec, attempt: int = 1,
            trace: Optional[TraceContext] = None,
            publisher=None, profile: bool = False,
            heartbeat_s: float = 0.2, store=None):
    """Execute one job under job-local telemetry.

    Returns ``(JobResult, shard records)`` where the records are the
    job's span trees plus its metrics snapshot — exactly one shard's
    content, without a manifest (the batch driver owns the manifest).

    Args:
        trace: Cross-process span-identity context from the batch
            supervisor.  Applied whether or not streaming is on, so
            span ids are identical either way.
        publisher: Live `EventPublisher` (default: the inert null).
            When enabled, the job emits ``hello``, streams every span
            through a `StreamingTracer`, and ticks heartbeats from a
            daemon thread for the duration.  The terminal ``bye`` is
            the *caller's* job, once the shard is durably written —
            ``bye`` received must imply the shard exists.
        profile: Attach a sampling profiler to the job's root span
            (collapsed stacks land in the span's ``profile`` attr).
        store: A `repro.store.ResultStore`.  Checked once more right
            before executing — a result published while this job sat
            in the queue (another batch, another serve client) is
            honoured with a ``cached=True`` span instead of a rerun —
            and the fresh result is published back on the way out.
            Store lookups bump hit/miss counters in the job's metrics
            registry, so the shard carries them.
    """
    publisher = NULL_PUBLISHER if publisher is None else publisher
    if trace is not None:
        tracer = trace.make_tracer(publisher if publisher.enabled else None)
    elif publisher.enabled:
        tracer = StreamingTracer(publisher)
    else:
        tracer = Tracer()
    registry = MetricsRegistry()
    start = time.perf_counter()
    heartbeat = None
    if publisher.enabled:
        publisher.hello(attempt=attempt)
        heartbeat = HeartbeatThread(publisher, tracer, interval_s=heartbeat_s)
        heartbeat.start()
    executed = False
    try:
        with use_tracer(tracer), use_registry(registry), \
                use_publisher(publisher):
            with tracer.span("batch.job", job=spec.key, circuit=spec.circuit,
                             variant=spec.variant, seed=spec.seed,
                             attempt=attempt) as span:
                result = store.get(spec) if store is not None else None
                if result is not None:
                    span.set("cached", True)
                else:
                    executed = True
                    with profiled(span, enabled=profile):
                        try:
                            result = _execute(spec, attempt)
                        except Exception as exc:  # noqa: BLE001 - jobs must not kill the batch
                            result = JobResult(
                                key=spec.key, status="error", attempts=attempt,
                                error=f"{type(exc).__name__}: {exc}\n"
                                      f"{traceback.format_exc(limit=8)}",
                            )
                span.set_many(status=result.status,
                              wirelength=result.qor.get("wirelength"))
    finally:
        if heartbeat is not None:
            heartbeat.stop()
    result.wall_s = time.perf_counter() - start
    if store is not None and executed:
        try:
            store.put(spec, result)
        except (OSError, ValueError):  # pragma: no cover - a full disk
            # degrades to an unwarmed store, never a failed job
            pass
    records = telemetry_records(manifest=None, tracer=tracer, registry=registry)
    return result, records


def finish_job_stream(publisher, result: JobResult,
                      records) -> None:
    """Emit the terminal ``bye`` for a streamed job.

    Called after the shard content is durable.  The metrics payload is
    the exact snapshot embedded in the shard records, so the collector
    ends up holding byte-for-byte what the shard file holds.
    """
    if publisher is None or not publisher.enabled:
        return
    snapshot = None
    for record in records or []:
        if record.get("type") == "metrics":
            snapshot = record.get("metrics")
    publisher.bye(status=result.status, metrics=snapshot)


def job_process_main(spec_doc: Dict[str, object], attempt: int,
                     result_path: str, shard_path: str,
                     trace_doc: Optional[Dict[str, object]] = None,
                     event_queue=None, profile: bool = False,
                     heartbeat_s: float = 0.2, index: int = -1,
                     store_doc: Optional[Dict[str, object]] = None) -> None:
    """Subprocess entry: run the job, write result + shard, exit.

    The shard is written before the result: the executor treats the
    result file's existence as the job's commit point, so a crash
    between the two writes reads as a crashed attempt (and the retry
    overwrites both files), never as a half-reported success.  The
    stream's ``bye`` goes out after the shard write for the same
    reason — a ``bye`` the collector sees guarantees a shard on disk.
    """
    # A child forked from a ThreadPoolExecutor worker thread (the serve
    # dispatch path runs the executor via asyncio.to_thread) inherits the
    # pool's atexit bookkeeping; its _python_exit hook would then try to
    # join the forking thread — this process's own main thread after the
    # fork — and kill the exit with a spurious nonzero code.  This
    # process owns no executor threads, so drop the inherited entries.
    import concurrent.futures.thread as _cft

    _cft._threads_queues.clear()
    spec = JobSpec.from_dict(spec_doc)
    trace = TraceContext.from_dict(trace_doc) if trace_doc else None
    publisher = None
    if event_queue is not None:
        publisher = EventPublisher(event_queue, job=spec.key, index=index)
    store = None
    if store_doc is not None:
        from ..store import ResultStore

        store = ResultStore.from_doc(store_doc)
    result, records = run_job(spec, attempt=attempt, trace=trace,
                              publisher=publisher, profile=profile,
                              heartbeat_s=heartbeat_s, store=store)
    write_jsonl(shard_path, records)
    finish_job_stream(publisher, result, records)
    tmp_path = f"{result_path}.tmp"
    write_jsonl(tmp_path, [result.to_dict()])
    os.replace(tmp_path, result_path)
