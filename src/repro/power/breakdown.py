"""Power breakdown reporting in the paper's Fig. 9 categories.

Fig. 9 buckets a baseline CMOS-only FPGA's power as:

* dynamic: wire interconnects 40%, routing buffers 30%, LUTs 20%,
  clocking 10%;
* leakage: routing buffers 70%, routing SRAMs 12%, routing pass
  transistors 10%, LUTs 8%.

This module folds the detailed model outputs into those buckets and
formats comparison tables.
"""

from __future__ import annotations

from typing import Dict, Mapping

#: Paper Fig. 9 reference percentages (for EXPERIMENTS.md comparison).
PAPER_DYNAMIC_BREAKDOWN = {
    "wire_interconnect": 40.0,
    "routing_buffers": 30.0,
    "luts": 20.0,
    "clocking": 10.0,
}
PAPER_LEAKAGE_BREAKDOWN = {
    "routing_buffers": 70.0,
    "routing_srams": 12.0,
    "routing_pass_transistors": 10.0,
    "luts": 8.0,
}


def fold_dynamic(detailed: Mapping[str, float]) -> Dict[str, float]:
    """Fold the dynamic model's categories into Fig. 9's four slices.

    Switch parasitics ride the wires they load -> wire interconnect;
    local (intra-cluster crossbar) switching serves LUT inputs -> LUTs.
    """
    return {
        "wire_interconnect": detailed.get("wire_interconnect", 0.0)
        + detailed.get("routing_switches", 0.0),
        "routing_buffers": detailed.get("routing_buffers", 0.0),
        "luts": detailed.get("luts", 0.0) + detailed.get("local_interconnect", 0.0),
        "clocking": detailed.get("clocking", 0.0),
    }


def fold_leakage(detailed: Mapping[str, float]) -> Dict[str, float]:
    """Fold the leakage model's categories into Fig. 9's four slices.

    The small `other` bucket (FFs, output muxes, clock buffers) joins
    LUTs, as in the paper's 8% logic slice.
    """
    return {
        "routing_buffers": detailed.get("routing_buffers", 0.0),
        "routing_srams": detailed.get("routing_srams", 0.0),
        "routing_pass_transistors": detailed.get("routing_pass_transistors", 0.0),
        "luts": detailed.get("luts", 0.0) + detailed.get("other", 0.0),
    }


def percentages(breakdown: Mapping[str, float]) -> Dict[str, float]:
    """Normalise a breakdown to percent of total."""
    total = sum(breakdown.values())
    if total <= 0:
        return {k: 0.0 for k in breakdown}
    return {k: 100.0 * v / total for k, v in breakdown.items()}


def format_table(breakdown: Mapping[str, float], title: str, unit: str = "W") -> str:
    """Plain-text table of a breakdown with percentages."""
    pct = percentages(breakdown)
    total = sum(breakdown.values())
    lines = [title, "-" * len(title)]
    for key in sorted(breakdown, key=lambda k: -breakdown[k]):
        lines.append(f"{key:28s} {breakdown[key]:12.4e} {unit}  {pct[key]:5.1f}%")
    lines.append(f"{'total':28s} {total:12.4e} {unit}")
    return "\n".join(lines)


def compare_to_paper(
    measured_pct: Mapping[str, float], reference_pct: Mapping[str, float]
) -> Dict[str, Dict[str, float]]:
    """{category: {paper, measured, abs_error}} for EXPERIMENTS.md."""
    result: Dict[str, Dict[str, float]] = {}
    for key, ref in reference_pct.items():
        measured = measured_pct.get(key, 0.0)
        result[key] = {
            "paper_pct": ref,
            "measured_pct": measured,
            "abs_error_pct": abs(measured - ref),
        }
    return result
