"""Static (leakage) power model, per tile and per FPGA.

Leakage is paid by every fabricated device whether or not the
application uses it, so the model works from the tile inventory times
the grid size (paper Fig. 9 reports a fabric-level breakdown where
routing buffers dominate at ~70%).

Per-component leakage values come from the circuit models:

* routing buffers leak in proportion to their total transistor width
  (+ the half-latch restorer in CMOS-only fabrics),
* off pass transistors leak subthreshold current (NEM relays: zero),
* configuration SRAM leaks per bit (NEM relays need none),
* LUTs leak through their read mux/drivers, FFs and clock buffers leak
  like small fixed-width gates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..arch.tile import TileInventory
from ..circuits.buffers import RoutingBuffer
from ..circuits.ptm import TransistorModel
from ..circuits.switches import SRAMCell

#: Effective leaking widths of non-routing blocks (minimum widths).
LUT_LEAK_WIDTHS = 20.0     # read tree + output driver of one K-LUT
FF_LEAK_WIDTHS = 3.0
CLOCK_BUFFER_LEAK_WIDTHS = 8.0
OUTPUT_MUX_LEAK_WIDTHS = 0.5

#: Fraction of a routing pass transistor's nominal subthreshold leak
#: that the fabric pays on average: off switches see reduced drain
#: bias (both nets often at the same level) and routing switches use
#: high-Vt devices; calibrated against Fig. 9's 10% share.
PASS_TRANSISTOR_DUTY = 0.15


@dataclasses.dataclass(frozen=True)
class LeakageSpec:
    """Electrical ingredients of the per-tile leakage computation.

    ``switch_leak`` is the average static power of one routing switch
    (0 for NEM relays); ``sram_leak`` per configuration bit (0 when
    relays replace the SRAM); buffer entries are None when the variant
    removes them.
    """

    tech: TransistorModel
    switch_leak: float
    sram_leak: float
    wire_buffer: Optional[RoutingBuffer]
    lb_input_buffer: Optional[RoutingBuffer]
    lb_output_buffer: Optional[RoutingBuffer]
    crossbar_switch_leak: float
    crossbar_sram_leak: float


def cmos_switch_leakage(tech: TransistorModel, width: float = 4.0) -> float:
    """Average leakage (W) of one NMOS routing pass switch."""
    return PASS_TRANSISTOR_DUTY * width * tech.i_leak_min * tech.vdd


def sram_bit_leakage(tech: TransistorModel) -> float:
    """Leakage (W) of one configuration SRAM bit."""
    return SRAMCell(tech).leakage_power


def tile_leakage(inventory: TileInventory, spec: LeakageSpec) -> Dict[str, float]:
    """Per-tile leakage (W) by Fig. 9 category.

    Categories: routing_buffers, routing_pass_transistors,
    routing_srams, luts (the paper's four leakage slices), plus
    `other` (FFs, muxes, clock) which the paper folds into LUTs' 8%.
    """
    tech = spec.tech
    unit = tech.i_leak_min * tech.vdd

    buffers = 0.0
    if spec.wire_buffer is not None:
        buffers += inventory.wire_buffers * spec.wire_buffer.leakage_power()
    if spec.lb_input_buffer is not None:
        buffers += inventory.lb_input_buffers * spec.lb_input_buffer.leakage_power()
    if spec.lb_output_buffer is not None:
        buffers += inventory.lb_output_buffers * spec.lb_output_buffer.leakage_power()

    pass_transistors = inventory.routing_switches * spec.switch_leak
    pass_transistors += inventory.crossbar_switches * spec.crossbar_switch_leak

    srams = inventory.routing_sram_bits * spec.sram_leak
    srams += inventory.crossbar_sram_bits * spec.crossbar_sram_leak

    luts = inventory.lut_count * LUT_LEAK_WIDTHS * unit
    luts += inventory.lut_sram_bits * sram_bit_leakage(tech)

    other = (
        inventory.ff_count * FF_LEAK_WIDTHS * unit
        + inventory.output_mux_count * OUTPUT_MUX_LEAK_WIDTHS * unit
        + inventory.clock_buffers * CLOCK_BUFFER_LEAK_WIDTHS * unit
    )
    return {
        "routing_buffers": buffers,
        "routing_pass_transistors": pass_transistors,
        "routing_srams": srams,
        "luts": luts,
        "other": other,
    }


def fpga_leakage(
    inventory: TileInventory, spec: LeakageSpec, num_tiles: int
) -> Dict[str, float]:
    """Whole-array leakage (W) by category; every fabricated tile
    leaks regardless of utilisation."""
    if num_tiles < 1:
        raise ValueError(f"num_tiles must be >= 1, got {num_tiles}")
    per_tile = tile_leakage(inventory, spec)
    return {k: v * num_tiles for k, v in per_tile.items()}


def total_leakage(breakdown: Dict[str, float]) -> float:
    return sum(breakdown.values())
