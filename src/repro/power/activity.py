"""Switching-activity estimation ([Jamieson 09] power-model input).

The paper's power model "incorporates appropriate switching activities
of various circuit nodes".  We estimate activity (transitions per
clock cycle) with the standard transition-density propagation:

* primary inputs toggle with a configurable density,
* a LUT output's density is the mean of its input densities scaled by
  a logic attenuation factor (random logic filters transitions),
* a FF output toggles at most once per cycle, at its input's density
  clipped and scaled by a register attenuation factor.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..netlist.core import BlockType, Netlist

#: Default transition density of primary inputs (transitions/cycle).
DEFAULT_INPUT_ACTIVITY = 0.2

#: Per-LUT-level attenuation of transition density.
LOGIC_ATTENUATION = 0.85

#: Registers filter glitches; output density relative to D input.
REGISTER_ATTENUATION = 0.7


@dataclasses.dataclass(frozen=True)
class ActivityModel:
    """Parameters of the density propagation."""

    input_activity: float = DEFAULT_INPUT_ACTIVITY
    logic_attenuation: float = LOGIC_ATTENUATION
    register_attenuation: float = REGISTER_ATTENUATION

    def __post_init__(self) -> None:
        if not 0.0 < self.input_activity <= 2.0:
            raise ValueError(f"input activity must be in (0, 2], got {self.input_activity}")
        for name in ("logic_attenuation", "register_attenuation"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")


def estimate_activities(
    netlist: Netlist, model: ActivityModel = ActivityModel()
) -> Dict[str, float]:
    """Transition density per driving signal (block name -> density).

    FF outputs seed at the input density so sequential loops converge
    in one topological pass (FFs cut the combinational order).
    """
    order = netlist.topological_luts()
    if order is None:
        raise ValueError("cannot estimate activity on a cyclic netlist")
    density: Dict[str, float] = {}
    for pi in netlist.inputs:
        density[pi.name] = model.input_activity
    # FFs first pass: assume nominal density (refined below).
    for ff in netlist.ffs:
        density[ff.name] = model.input_activity * model.register_attenuation

    for _refine in range(2):
        for lut_name in order:
            block = netlist.blocks[lut_name]
            inputs = [density.get(src, model.input_activity) for src in block.inputs]
            density[lut_name] = model.logic_attenuation * sum(inputs) / len(inputs)
        for ff in netlist.ffs:
            d_in = density.get(ff.inputs[0], model.input_activity)
            density[ff.name] = model.register_attenuation * min(d_in, 1.0)
    return density


def average_activity(netlist: Netlist, model: ActivityModel = ActivityModel()) -> float:
    """Mean transition density over all driven signals."""
    densities = estimate_activities(netlist, model)
    return sum(densities.values()) / len(densities) if densities else 0.0
