"""Dynamic power model ([Jamieson 09]-style, paper Sec. 3.3).

Dynamic power sums alpha/2 * C * Vdd^2 * f over every switching node:

* **routing nets** — per routed net, the switched capacitance comes
  from the timing extractor's per-net breakdown (wires incl. off-switch
  loading, routing buffers, switch parasitics), weighted by the
  driver's transition density;
* **local interconnect** — intra-cluster crossbar hops per BLE input;
* **LUTs** — internal read-tree switching per LUT output transition;
* **clocking** — clock tree and FF clock pins toggle every cycle.

Comparisons between FPGA variants evaluate at a common reference clock
(the baseline's achievable frequency) so the reductions reported are
capacitance reductions, as in the paper's iso-performance framing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

from ..circuits.ptm import TransistorModel
from ..netlist.core import BlockType, Netlist
from ..vpr.timing import NetDelays

#: Internal switched capacitance of one K-LUT output transition, as a
#: multiple of the minimum inverter input capacitance (read tree,
#: output driver nodes, and internal glitching).
LUT_INTERNAL_CAP_WIDTHS = 170.0

#: Switched capacitance per intra-cluster crossbar hop (crossbar wire
#: + crosspoint + LUT input gate), in minimum inverter input caps.
LOCAL_HOP_CAP_WIDTHS = 10.0

#: Clock buffer capacitance per tile, in minimum inverter input caps;
#: the distribution-wire part scales with tile pitch (see
#: `DynamicSpec.clock_cap_per_tile`).
CLOCK_BUFFER_CAP_WIDTHS = 8.0

#: Effective clock distribution wire per tile, as a fraction of the
#: tile pitch (H-tree branch share weighted by its activity).
CLOCK_WIRE_PITCH_FRACTION = 0.35

#: Clock pin capacitance per FF, in minimum inverter input caps.
FF_CLOCK_CAP_WIDTHS = 1.5


@dataclasses.dataclass(frozen=True)
class DynamicSpec:
    """Variant-dependent knobs of the dynamic model.

    ``local_hop_cap`` is the energy-relevant capacitance of one
    intra-cluster connection (F) — lower for relay crossbars (tiny
    C_on) than for pass-transistor crossbars; ``lut_internal_cap`` the
    LUT-internal switched capacitance per output transition (F).
    """

    tech: TransistorModel
    local_hop_cap: float
    lut_internal_cap: float
    #: Clock tree capacitance per tile (F); 0 selects the pitch-free
    #: buffer-only default.
    clock_cap_per_tile: float = 0.0

    def resolved_clock_cap(self) -> float:
        if self.clock_cap_per_tile > 0.0:
            return self.clock_cap_per_tile
        return CLOCK_BUFFER_CAP_WIDTHS * self.tech.inverter_input_cap

    @classmethod
    def from_widths(
        cls,
        tech: TransistorModel,
        local_hop_widths: float = LOCAL_HOP_CAP_WIDTHS,
        lut_internal_widths: float = LUT_INTERNAL_CAP_WIDTHS,
    ) -> "DynamicSpec":
        c_unit = tech.inverter_input_cap
        return cls(
            tech=tech,
            local_hop_cap=local_hop_widths * c_unit,
            lut_internal_cap=lut_internal_widths * c_unit,
        )


def dynamic_power(
    netlist: Netlist,
    net_delays: Mapping[str, NetDelays],
    activities: Mapping[str, float],
    spec: DynamicSpec,
    frequency: float,
    num_tiles: int,
    num_local_hops: Optional[int] = None,
) -> Dict[str, float]:
    """Dynamic power (W) by Fig. 9 category.

    Args:
        netlist: The application.
        net_delays: Routed-net capacitance extraction (from
            `repro.vpr.timing.analyze_timing`).
        activities: Transition density per driving signal.
        spec: Variant electrical knobs.
        frequency: Operating clock (Hz).
        num_tiles: Fabric tiles (for the clock tree).
        num_local_hops: Intra-cluster connections; default estimates
            one hop per LUT input pin.

    Returns:
        {"wire_interconnect", "routing_buffers", "routing_switches",
         "luts", "local_interconnect", "clocking"} in watts.
    """
    if frequency <= 0:
        raise ValueError(f"frequency must be positive, got {frequency}")
    vdd2 = spec.tech.vdd**2
    half_f = 0.5 * frequency

    wire = 0.0
    buffers = 0.0
    switches = 0.0
    for name, nd in net_delays.items():
        alpha = activities.get(name, 0.1)
        wire += alpha * nd.cap_wire
        buffers += alpha * nd.cap_buffer
        switches += alpha * nd.cap_switch
    wire *= half_f * vdd2
    buffers *= half_f * vdd2
    switches *= half_f * vdd2

    luts = 0.0
    local = 0.0
    for lut in netlist.luts:
        alpha_out = activities.get(lut.name, 0.1)
        luts += alpha_out * spec.lut_internal_cap
        for src in lut.inputs:
            local += activities.get(src, 0.1) * spec.local_hop_cap
    luts *= half_f * vdd2
    local *= half_f * vdd2
    if num_local_hops is not None:
        # Caller supplied an exact hop count; rescale the estimate.
        estimated_hops = sum(len(lut.inputs) for lut in netlist.luts)
        if estimated_hops > 0:
            local *= num_local_hops / estimated_hops

    c_unit = spec.tech.inverter_input_cap
    clock_cap = num_tiles * spec.resolved_clock_cap()
    clock_cap += len(netlist.ffs) * FF_CLOCK_CAP_WIDTHS * c_unit
    # The clock toggles twice per cycle: alpha = 2, so alpha/2 = 1.
    clocking = clock_cap * vdd2 * frequency

    return {
        "wire_interconnect": wire,
        "routing_buffers": buffers,
        "routing_switches": switches,
        "luts": luts,
        "local_interconnect": local,
        "clocking": clocking,
    }


def total_dynamic(breakdown: Mapping[str, float]) -> float:
    return sum(breakdown.values())
