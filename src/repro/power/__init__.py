"""Power modelling substrate ([Jamieson 09]-style, paper Sec. 3.3).

Switching-activity estimation, per-node dynamic power, per-block
leakage power, and the Fig. 9 breakdown reporting.
"""

from .activity import (
    ActivityModel,
    DEFAULT_INPUT_ACTIVITY,
    LOGIC_ATTENUATION,
    REGISTER_ATTENUATION,
    average_activity,
    estimate_activities,
)
from .dynamic import (
    CLOCK_BUFFER_CAP_WIDTHS,
    CLOCK_WIRE_PITCH_FRACTION,
    DynamicSpec,
    FF_CLOCK_CAP_WIDTHS,
    LOCAL_HOP_CAP_WIDTHS,
    LUT_INTERNAL_CAP_WIDTHS,
    dynamic_power,
    total_dynamic,
)
from .leakage import (
    LeakageSpec,
    cmos_switch_leakage,
    fpga_leakage,
    sram_bit_leakage,
    tile_leakage,
    total_leakage,
)
from .breakdown import (
    PAPER_DYNAMIC_BREAKDOWN,
    PAPER_LEAKAGE_BREAKDOWN,
    compare_to_paper,
    fold_dynamic,
    fold_leakage,
    format_table,
    percentages,
)

__all__ = [
    "ActivityModel",
    "CLOCK_BUFFER_CAP_WIDTHS",
    "CLOCK_WIRE_PITCH_FRACTION",
    "DEFAULT_INPUT_ACTIVITY",
    "DynamicSpec",
    "FF_CLOCK_CAP_WIDTHS",
    "LOCAL_HOP_CAP_WIDTHS",
    "LOGIC_ATTENUATION",
    "LUT_INTERNAL_CAP_WIDTHS",
    "LeakageSpec",
    "PAPER_DYNAMIC_BREAKDOWN",
    "PAPER_LEAKAGE_BREAKDOWN",
    "REGISTER_ATTENUATION",
    "average_activity",
    "cmos_switch_leakage",
    "compare_to_paper",
    "dynamic_power",
    "estimate_activities",
    "fold_dynamic",
    "fold_leakage",
    "format_table",
    "fpga_leakage",
    "percentages",
    "sram_bit_leakage",
    "tile_leakage",
    "total_dynamic",
    "total_leakage",
]
