"""Extension — defect tolerance: BIST + defect-avoidance rerouting.

The paper's relays have finite reliable cycles and contact-quality
spread; a production relay FPGA would map dead crosspoints (BIST) and
route around them (reconfiguration as repair).  This bench measures
both halves: BIST accuracy on fault-injected arrays, and routing
success as a function of the dead-switch fraction.
"""

import random

import pytest

from repro.arch.rrgraph import RRGraph
from repro.crossbar import StuckMode, faulty_crossbar, run_bist, solve_voltages
from repro.nemrelay import ActuationModel, AIR, POLYSILICON, SCALED_22NM_DEVICE
from repro.netlist import MCNC20_PARAMS, generate
from repro.vpr import PathFinderRouter, build_route_nets
from repro.vpr.pack import pack
from repro.vpr.place import place

from conftest import BENCH_ARCH, BENCH_SCALE

MODEL = ActuationModel(POLYSILICON, SCALED_22NM_DEVICE, AIR)
DEFECT_FRACTIONS = (0.0, 0.02, 0.05, 0.10, 0.20)


def run_defects():
    # Part 1: BIST on a fault-injected 8x8 array.
    voltages = solve_voltages([MODEL.pull_in], [MODEL.pull_out])
    rng = random.Random(3)
    coords = [(r, c) for r in range(8) for c in range(8)]
    injected = {
        coord: rng.choice(list(StuckMode))
        for coord in rng.sample(coords, 6)
    }
    defects = run_bist(faulty_crossbar(8, 8, MODEL, injected), voltages)

    # Part 2: routing success vs dead-wire fraction.
    params = next(p for p in MCNC20_PARAMS if p.name == "diffeq").scaled(BENCH_SCALE * 2)
    netlist = generate(params)
    clustered = pack(netlist, BENCH_ARCH)
    placement = place(clustered, seed=1)
    nets = build_route_nets(placement)
    rows = []
    for fraction in DEFECT_FRACTIONS:
        graph = RRGraph(BENCH_ARCH, placement.grid_width, placement.grid_height)
        wires = [n.id for n in graph.wire_nodes()]
        blocked = set(rng.sample(wires, int(fraction * len(wires))))
        router = PathFinderRouter(graph, blocked_nodes=blocked)
        result = router.route(nets)
        rows.append((fraction, result.success, result.wirelength, result.iterations))
    return injected, defects, rows


@pytest.mark.benchmark(group="extension")
def test_extension_defect_tolerance(benchmark):
    injected, defects, rows = benchmark.pedantic(run_defects, rounds=1, iterations=1)

    print("\n=== Extension: BIST defect mapping (8x8 array, 6 faults) ===")
    print(f"injected: {sorted(injected)}")
    print(f"found   : stuck-open {sorted(defects.stuck_open)}, "
          f"stuck-closed {sorted(defects.stuck_closed)}")
    print("\n=== Extension: routing vs dead-switch fraction ===")
    print(f"{'dead %':>7s} {'routes?':>8s} {'wirelength':>11s} {'iterations':>11s}")
    for fraction, success, wirelength, iterations in rows:
        print(f"{100 * fraction:7.0f} {success!s:>8s} {wirelength:11d} {iterations:11d}")

    # BIST recovers the injected fault set exactly.
    expected_open = {c for c, m in injected.items() if m is StuckMode.STUCK_OPEN}
    expected_closed = {c for c, m in injected.items() if m is StuckMode.STUCK_CLOSED}
    assert defects.stuck_open == expected_open
    assert defects.stuck_closed == expected_closed
    # The fabric absorbs up to 20% dead switches at the low-stress
    # channel width (spare capacity doubles as repair headroom), and
    # detours keep wirelength within a narrow band of the clean route.
    clean_wl = rows[0][2]
    for _fraction, success, wirelength, _iterations in rows:
        assert success
        assert abs(wirelength - clean_wl) < 0.2 * clean_wl
