"""Routing-kernel bench — reference Python walk vs the vector kernels.

PathFinder's inner expansion loop dominates the whole flow at
evaluation scale, so the vectorised kernels (`repro.vpr.route_kernels`)
are the difference between minutes and seconds per route.  This bench
times every available kernel on the same tseng routing job and checks
the results are *bit-identical* — the speedup must come from how the
search executes, never from searching differently (that contract is
what keeps the kernel out of store cache keys; see
tests/vpr/test_route_kernels.py for the full differential harness).

Defaults reproduce the headline measurement: full-size tseng at
W = 56, where the numpy kernel clears 3x over the reference.  Knobs:

    REPRO_BENCH_ROUTE_SCALE  circuit shrink factor (default 1.0 —
                             unlike the other benches, this one runs
                             full size: the vector arms only pay off
                             on graphs past ~4k nodes)
    REPRO_BENCH_ROUTE_W      channel width (default 56)

A ``BENCH_route_kernel.json`` lands next to the other bench telemetry
(same shape `repro bench-history append` consumes), with the per-arm
seconds and the speedups as its ``stages``, so the bench-history
trajectory tracks kernel-performance regressions across commits.
"""

import os
import time

import pytest

from repro.fabric import get_fabric
from repro.netlist import load_circuit
from repro.obs import run_manifest, write_json
from repro.obs.analyze import append_history, summarize_bench
from repro.arch import ArchParams
from repro.vpr.route import PathFinderRouter, build_route_nets
from repro.vpr.route_kernels import NUMPY_MIN_NODES, numba_available
from repro.vpr.pack import pack
from repro.vpr.place import place

from conftest import BENCH_HISTORY, BENCH_TELEMETRY, BENCH_TELEMETRY_DIR

ROUTE_SCALE = float(os.environ.get("REPRO_BENCH_ROUTE_SCALE", "1.0"))
ROUTE_W = int(os.environ.get("REPRO_BENCH_ROUTE_W", "56"))
ROUTE_ARCH = ArchParams(channel_width=ROUTE_W)

#: Conservative gates below the observed figures so machine noise
#: cannot flake CI; the printed table reports the real numbers.
#: Observed on the full-size default: numpy 3.2x (target >= 3x).  The
#: numba arm compiles the same walk; anything below the numpy arm
#: would mean the compiled path regressed to interpretation.
MIN_SPEEDUP_NUMPY = 2.0
MIN_SPEEDUP_NUMBA = 3.0


def _fingerprint(result):
    import dataclasses

    return dataclasses.asdict(result)


@pytest.mark.benchmark(group="route-kernel")
def test_route_kernel_speedup(benchmark):
    netlist = load_circuit("tseng", scale=ROUTE_SCALE)
    clustered = pack(netlist, ROUTE_ARCH)
    placement = place(clustered, seed=1)
    nets = build_route_nets(placement)
    graph = get_fabric(
        ROUTE_ARCH, placement.grid_width, placement.grid_height)

    arms = ["python", "numpy"] + (["numba"] if numba_available() else [])

    def run():
        times, results = {}, {}
        for kernel in arms:
            router = PathFinderRouter(graph, kernel=kernel)
            t0 = time.perf_counter()
            results[kernel] = router.route(nets)
            times[kernel] = time.perf_counter() - t0
        return times, results

    times, results = benchmark.pedantic(run, rounds=1, iterations=1)
    ref = _fingerprint(results["python"])
    speedups = {k: times["python"] / times[k] for k in arms}

    print(f"\n=== Routing-kernel bench (tseng, scale {ROUTE_SCALE}, "
          f"W = {ROUTE_W}, {graph.num_nodes} RR nodes) ===")
    print(f"{'kernel':>10s} {'seconds':>9s} {'speedup':>8s}")
    for kernel in arms:
        print(f"{kernel:>10s} {times[kernel]:9.2f} {speedups[kernel]:7.2f}x")
    if not numba_available():
        print("(numba arm skipped: not importable in this environment)")

    # Bit-identical results before any timing claim: same trees, same
    # iteration trace, same outcome — success or failure alike.
    for kernel in arms[1:]:
        assert _fingerprint(results[kernel]) == ref, (
            f"kernel {kernel!r} diverged from the reference walk")

    if BENCH_TELEMETRY:
        stages = {f"t_{k}": times[k] for k in arms}
        stages.update({f"speedup_{k}": speedups[k] for k in arms[1:]})
        doc = {
            "circuit": "tseng-route-kernel",
            "manifest": run_manifest(
                arch=ROUTE_ARCH,
                extra={"bench_scale": ROUTE_SCALE,
                       "route_w": ROUTE_W,
                       "rr_nodes": graph.num_nodes}),
            "telemetry": {"flows": [], "stages": stages},
        }
        path = os.path.join(BENCH_TELEMETRY_DIR, "BENCH_route_kernel.json")
        write_json(path, doc)
        if BENCH_HISTORY:
            append_history(BENCH_HISTORY, [summarize_bench(doc, source=path)])

    # The vector arms only pay off past ~NUMPY_MIN_NODES (auto keeps
    # the reference below that), so the gate matches: nothing enforced
    # on small graphs, a loose not-slower floor on shrunk-but-large
    # runs, the full gate at the full-size default where the observed
    # figure (3.2x) leaves real headroom.
    if graph.num_nodes >= NUMPY_MIN_NODES:
        gate = MIN_SPEEDUP_NUMPY if ROUTE_SCALE >= 1.0 else 1.2
        assert speedups["numpy"] >= gate, (
            f"numpy kernel speedup {speedups['numpy']:.2f}x below the "
            f"{gate}x gate")
        if "numba" in arms and ROUTE_SCALE >= 1.0:
            assert speedups["numba"] >= MIN_SPEEDUP_NUMBA, (
                f"numba kernel speedup {speedups['numba']:.2f}x below the "
                f"{MIN_SPEEDUP_NUMBA}x gate")
