"""Channel-width derivation — the paper's W = 118 methodology.

Paper Sec. 3.3: VPR estimates the minimum channel width Wmin over all
benchmark circuits; the final W adds 20% for "low-stress routing"
[Betz 99b], landing on W = 118 at full circuit scale.  This bench
reruns that derivation on scaled copies of paper circuits and checks
its internal consistency (every circuit routes at the derived W; the
margin rule matches the paper's rounding).
"""

import pytest

from repro.netlist import MCNC20_PARAMS, generate
from repro.vpr import find_min_channel_width, low_stress_width, route_design
from repro.vpr.pack import pack
from repro.vpr.place import place

from conftest import BENCH_ARCH, BENCH_SCALE

#: A few representative MCNC circuits (big + mid + small of the 20).
WMIN_CIRCUITS = ["clma", "elliptic", "alu4", "tseng"]


def run_wmin():
    params_by_name = {p.name: p for p in MCNC20_PARAMS}
    placements = {}
    wmins = {}
    for name in WMIN_CIRCUITS:
        netlist = generate(params_by_name[name].scaled(BENCH_SCALE))
        clustered = pack(netlist, BENCH_ARCH)
        placement = place(clustered, seed=1)
        wmin, _result, _graph = find_min_channel_width(placement, BENCH_ARCH, start=16)
        placements[name] = placement
        wmins[name] = wmin
    return placements, wmins


@pytest.mark.benchmark(group="channel-width")
def test_channel_width_derivation(benchmark):
    placements, wmins = benchmark.pedantic(run_wmin, rounds=1, iterations=1)

    overall = max(wmins.values())
    w = low_stress_width(overall)
    print(f"\n=== Channel width derivation (scale {BENCH_SCALE}) ===")
    print(f"{'circuit':>12s} {'Wmin':>6s}")
    for name, wmin in wmins.items():
        print(f"{name:>12s} {wmin:6d}")
    print(f"suite Wmin = {overall}; low-stress W = {w} "
          f"(paper at full scale: W = 118)")

    # Every circuit must route at the derived architecture width.
    for name, placement in placements.items():
        result, _graph = route_design(placement, BENCH_ARCH, channel_width=w)
        print(f"  {name}: routes at W={w}: {result.success}")
        assert result.success, f"{name} failed at derived W"

    # The paper's rounding rule reproduces 98 -> 118.
    assert low_stress_width(98) == 118
    # Scaled Wmin must be positive and below the paper's full-scale W.
    assert 0 < overall <= 118
