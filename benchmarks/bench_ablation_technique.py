"""Ablation — which half of the technique buys what (Sec. 3.2/3.4).

The paper's technique is two moves on top of relay routing: (1) remove
the LB input/output buffers, (2) downsize the wire buffers.  This
ablation evaluates the four combinations on one circuit at the
baseline's clock:

    A naive        relays only (all buffers kept, full size)
    B +remove      LB buffers removed, wire buffers full size
    C +downsize    LB buffers kept, wire buffers downsized 8x
    D full         both (the paper's CMOS-NEM FPGA)

Expected shape: B buys speed (shorter local paths) and a little power;
C buys most of the leakage reduction; D dominates both.
"""

import pytest

from repro.core import Comparison, VariantConfig, VariantKind, evaluate_design
from repro.core.variants import FpgaVariant, baseline_variant, naive_nem_variant
from repro.netlist import ALTERA4_PARAMS

from conftest import BENCH_SCALE


def make_runner(flow_cache, bench_arch):
    params = ALTERA4_PARAMS[1].scaled(BENCH_SCALE)  # oc_des_des3perf

    def run():
        flow = flow_cache.flow(params)
        base = evaluate_design(flow, baseline_variant(bench_arch))
        f_ref = base.frequency
        variants = {
            "A naive (relays only)": naive_nem_variant(bench_arch),
            "B + LB buffer removal": FpgaVariant(
                bench_arch, VariantConfig(VariantKind.CMOS_NEM_OPT, 1.0)
            ),
            "C + wire downsizing 8x": FpgaVariant(
                bench_arch,
                VariantConfig(VariantKind.CMOS_NEM_OPT, 8.0, keep_lb_buffers=True),
            ),
            "D full technique": FpgaVariant(
                bench_arch, VariantConfig(VariantKind.CMOS_NEM_OPT, 8.0)
            ),
        }
        rows = {}
        for label, variant in variants.items():
            point = evaluate_design(flow, variant, frequency=f_ref)
            rows[label] = Comparison.of(base, point)
        return rows

    return run


@pytest.mark.benchmark(group="ablation")
def test_ablation_technique_components(benchmark, flow_cache, bench_arch):
    rows = benchmark.pedantic(make_runner(flow_cache, bench_arch), rounds=1, iterations=1)

    print("\n=== Ablation: components of the buffer technique ===")
    print(f"{'design':26s} {'speedup':>8s} {'dyn.red':>8s} {'leak.red':>9s}")
    for label, cmp in rows.items():
        print(f"{label:26s} {cmp.speedup:8.2f} {cmp.dynamic_reduction:8.2f} "
              f"{cmp.leakage_reduction:9.2f}")

    naive = rows["A naive (relays only)"]
    removal = rows["B + LB buffer removal"]
    downsize = rows["C + wire downsizing 8x"]
    full = rows["D full technique"]
    # Downsizing is the leakage lever; removal alone helps less.
    assert downsize.leakage_reduction > 2.0 * naive.leakage_reduction
    assert removal.leakage_reduction > naive.leakage_reduction
    # The full technique dominates every partial variant on leakage.
    assert full.leakage_reduction >= downsize.leakage_reduction - 1e-9
    assert full.leakage_reduction > removal.leakage_reduction
    # And still shows no speed penalty against the baseline.
    assert full.speedup >= 1.0
