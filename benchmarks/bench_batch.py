"""Batch runner bench — serial vs worker-pool execution of one matrix.

The tentpole claim of the batch layer (DESIGN.md Sec. 5d): fanning a
(circuit x variant x seed) matrix over worker processes changes
wall-clock only, never results.  This bench runs the same `BatchSpec`
with 1 worker and with `BENCH_WORKERS`, asserts bit-identical
`JobResult`s job-for-job, and reports the speedup.

The >= 2x speedup gate only arms on machines with >= 4 cores —
process-level parallelism cannot beat serial on the 1-2 core
containers CI sometimes hands out, and a wall-clock flake must not
mask the identity check, which always runs.

Environment knobs:

    REPRO_BENCH_BATCH_SCALE    per-job circuit scale (default 0.02)
    REPRO_BENCH_BATCH_WORKERS  pool size for the parallel arm (4)
"""

import os

import pytest

from repro.runner import BatchSpec, results_identical, run_batch

BENCH_BATCH_SCALE = float(os.environ.get("REPRO_BENCH_BATCH_SCALE", "0.02"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_BATCH_WORKERS", "4"))

#: Speedup gate for the parallel arm, armed only when the machine has
#: enough cores to make it physically achievable.
MIN_SPEEDUP = 2.0

#: >= 4 jobs (ISSUE acceptance floor): 2 circuits x 2 variants x 2
#: seeds = 8 fixed-width jobs, enough work per arm to amortise fork
#: overhead at the bench scale.
BATCH_SPEC = BatchSpec.from_matrix(
    circuits=["tseng", "alu4"],
    variants=["baseline", "nem-opt:8"],
    seeds=[1, 2],
    widths=[56],
    scale=BENCH_BATCH_SCALE,
)


@pytest.mark.benchmark(group="batch-runner")
def test_batch_parallel_speedup_at_identical_qor(benchmark, tmp_path):
    def run():
        serial = run_batch(BATCH_SPEC, workers=1,
                           shard_dir=str(tmp_path / "serial"))
        parallel = run_batch(BATCH_SPEC, workers=BENCH_WORKERS,
                             shard_dir=str(tmp_path / "parallel"))
        return serial, parallel

    serial, parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = serial.wall_s / parallel.wall_s

    print(f"\n=== batch runner (jobs = {len(BATCH_SPEC.jobs)}, "
          f"scale {BENCH_BATCH_SCALE}) ===")
    print(f"{'arm':>22s} {'wall s':>9s} {'jobs ok':>8s}")
    print(f"{'serial (1 worker)':>22s} {serial.wall_s:9.2f} "
          f"{serial.summary()['ok']:8d}")
    print(f"{f'pool ({parallel.workers} workers)':>22s} "
          f"{parallel.wall_s:9.2f} {parallel.summary()['ok']:8d}")
    print(f"speedup: {speedup:.2f}x (target >= {MIN_SPEEDUP}x on >= 4 cores)")

    # The determinism contract is unconditional: every job's QoR and
    # artefact digests must match bit-for-bit across the arms.
    assert serial.ok and parallel.ok
    assert results_identical(serial.results, parallel.results)
    for s, p in zip(serial.results, parallel.results):
        assert s.digests == p.digests, s.key

    cores = os.cpu_count() or 1
    if cores >= 4 and parallel.workers >= 4:
        assert speedup >= MIN_SPEEDUP, (
            f"batch speedup {speedup:.2f}x below {MIN_SPEEDUP}x gate "
            f"on a {cores}-core machine"
        )
    else:
        print(f"(speedup gate skipped: {cores} cores, "
              f"{parallel.workers} workers)")


@pytest.mark.benchmark(group="batch-runner")
def test_prewarm_shares_fabric_with_workers(benchmark, tmp_path):
    """Pre-warm must leave the parent's fabric cache hot, so fork
    workers inherit built IRs instead of rebuilding per job."""
    from repro.fabric import fabric_cache

    spec = BatchSpec.from_matrix(
        circuits=["tseng"], variants=["baseline"], seeds=[1, 2],
        widths=[56], scale=BENCH_BATCH_SCALE,
    )

    def run():
        cache = fabric_cache()
        cache.clear()
        misses_before = cache.misses
        batch = run_batch(spec, workers=1, shard_dir=str(tmp_path / "warm"))
        return batch, cache.misses - misses_before

    batch, builds = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nfabric builds across {len(spec.jobs)} same-arch jobs: {builds}")
    assert batch.ok
    # One grid/width in the whole matrix -> exactly one fabric build.
    assert builds == 1, "same-arch jobs must share one pre-warmed FabricIR"
