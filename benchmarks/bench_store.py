"""Result-store bench — cold publish vs warm replay of one matrix.

The tentpole claim of the store layer (DESIGN.md Sec. 5h): replaying
a batch against a warm content-addressed store executes **zero** jobs
and serves byte-identical, digest-reverified `JobResult`s.  This
bench runs the committed tseng matrix (`specs/tseng_matrix.json`)
cold, replays it warm, asserts the identity and zero-execution
contracts, and gates the replay at >= `MIN_REPLAY_SPEEDUP`x.

Unlike the batch bench's parallel-speedup gate this one always arms:
a store hit is pure I/O + hashing, so even a 1-core container beats
re-running place-and-route by far more than 5x.

Environment knobs:

    REPRO_BENCH_STORE_WORKERS  pool size for both arms (default 2)
"""

import os
import time

import pytest

from repro.runner import BatchSpec, results_identical, run_batch
from repro.store import ResultStore

BENCH_STORE_WORKERS = int(os.environ.get("REPRO_BENCH_STORE_WORKERS", "2"))

#: The ISSUE acceptance gate: warm replay at least this much faster
#: than the cold run that populated the store.
MIN_REPLAY_SPEEDUP = 5.0

SPEC_PATH = os.path.join(os.path.dirname(__file__), "specs",
                         "tseng_matrix.json")


@pytest.mark.benchmark(group="store")
def test_store_replay_speedup(benchmark, tmp_path):
    spec = BatchSpec.from_file(SPEC_PATH)
    store_root = str(tmp_path / "store")
    code = "bench-store"

    t0 = time.perf_counter()
    cold = run_batch(spec, workers=BENCH_STORE_WORKERS,
                     shard_dir=str(tmp_path / "cold"),
                     store=ResultStore(store_root, code=code))
    cold_s = time.perf_counter() - t0
    assert cold.ok
    assert cold.store_stats["published"] == len(spec.jobs)

    def replay():
        return run_batch(spec, workers=BENCH_STORE_WORKERS,
                         shard_dir=str(tmp_path / "warm"),
                         store=ResultStore(store_root, code=code))

    t0 = time.perf_counter()
    warm = benchmark.pedantic(replay, rounds=1, iterations=1)
    warm_s = time.perf_counter() - t0

    # Zero-execution contract: every job served from the store.
    assert warm.store_stats["hits"] == len(spec.jobs)
    assert warm.store_stats["misses"] == 0
    assert sorted(warm.cached) == sorted(j.key for j in spec.jobs)
    # Byte-identity: the digest-reverified cached results match the
    # freshly executed ones exactly.
    assert results_identical(cold.results, warm.results)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"\n=== Store replay: cold {cold_s:.3f}s -> warm {warm_s:.3f}s "
          f"({speedup:.0f}x, {len(spec.jobs)} jobs) ===")
    assert speedup >= MIN_REPLAY_SPEEDUP, (
        f"warm replay only {speedup:.1f}x faster than cold "
        f"(gate: {MIN_REPLAY_SPEEDUP}x)")
