"""Extension — reliability and temperature envelopes, quantified.

Makes two of the paper's qualitative discussions numeric:

* Sec. 1 endurance: billion-cycle relays vs ~500 lifetime
  reconfigurations, pushed to full-fabric scale (where *stiction*,
  not wear-out, becomes the binding constraint — the paper's
  future-work call for consistent contacts, in numbers);
* Related work [Wang 11] temperature: how far the room-temperature
  programming point survives as silicon softens.
"""

import pytest

from repro.crossbar import solve_voltages
from repro.nemrelay import (
    AIR,
    POLYSILICON,
    SCALED_22NM_DEVICE,
    max_hold_temperature,
    paper_scale_report,
    pull_in_voltage,
    pull_out_voltage,
    required_stiction,
    vpi_at,
)


def run_extension():
    reliability = paper_scale_report()
    vpi = pull_in_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
    vpo = pull_out_voltage(POLYSILICON, SCALED_22NM_DEVICE, AIR)
    point = solve_voltages([vpi], [vpo])
    t_max = max_hold_temperature(
        POLYSILICON, SCALED_22NM_DEVICE, AIR, point.v_hold, point.v_select
    )
    drift = {t: vpi_at(POLYSILICON, SCALED_22NM_DEVICE, AIR, t) for t in (300, 400, 500, 600, 700)}
    return reliability, point, t_max, drift


@pytest.mark.benchmark(group="extension")
def test_extension_reliability_and_thermal(benchmark):
    reliability, point, t_max, drift = benchmark(run_extension)

    print("\n=== Extension: fabric reliability at paper scale ===")
    print(f"cycles per relay (500 reconfigs x2): {reliability['cycles_per_relay']:.0f}")
    print(f"per-device survival                : {reliability['device_survival']:.8f}")
    print(f"bare 7.6M-relay fabric survival    : {reliability['bare_fabric_survival']:.2e}")
    print(f"with 0.01% spare rows              : {reliability['spared_fabric_survival']:.4f}")
    print(f"spared reconfig budget @99%        : {reliability['spared_max_reconfigs_99pct']}")
    print(f"required bare stiction @99%        : {reliability['required_p_stick_bare_99pct']:.1e} per actuation")

    print("\n=== Extension: thermal drift of the programming point ===")
    print(f"room point: Vhold = {point.v_hold:.3f} V, Vselect = {point.v_select:.3f} V")
    for t, vpi in drift.items():
        print(f"  T = {t:3d} K: Vpi = {vpi:.3f} V")
    print(f"programming point stays valid up to {t_max:.0f} K "
          f"({t_max - 273.15:.0f} C)")

    assert reliability["device_survival"] > 1 - 1e-5
    assert reliability["bare_fabric_survival"] < 0.5
    assert reliability["spared_fabric_survival"] > 0.99
    assert reliability["required_p_stick_bare_99pct"] < 1e-11
    assert t_max > 350.0  # survives well past commercial temp range
    vpis = list(drift.values())
    assert vpis == sorted(vpis, reverse=True)
