"""Fig. 9 — dynamic and leakage power breakdown, CMOS-only baseline.

Paper: dynamic power splits as wire interconnects 40%, routing buffers
30%, LUTs 20%, clocking 10%; leakage splits as routing buffers 70%,
routing SRAMs 12%, routing pass transistors 10%, LUTs 8%.  This bench
evaluates the baseline on a scaled paper circuit and compares the
shares.
"""

import pytest

from repro.core import baseline_variant, evaluate_design
from repro.netlist import ALTERA4_PARAMS
from repro.power import (
    PAPER_DYNAMIC_BREAKDOWN,
    PAPER_LEAKAGE_BREAKDOWN,
    fold_dynamic,
    fold_leakage,
    percentages,
)

from conftest import BENCH_SCALE


def make_runner(flow_cache, bench_arch):
    params = ALTERA4_PARAMS[0].scaled(BENCH_SCALE)  # 'ava'

    def run():
        flow = flow_cache.flow(params)
        point = evaluate_design(flow, baseline_variant(bench_arch))
        return (
            percentages(fold_dynamic(point.dynamic)),
            percentages(fold_leakage(point.leakage)),
        )

    return run


@pytest.mark.benchmark(group="fig9")
def test_fig9_power_breakdown(benchmark, flow_cache, bench_arch):
    dyn_pct, leak_pct = benchmark.pedantic(
        make_runner(flow_cache, bench_arch), rounds=1, iterations=1
    )

    print("\n=== Fig. 9: baseline CMOS-only power breakdown ===")
    print("dynamic power:")
    print(f"{'component':>26s} {'paper %':>8s} {'measured %':>11s}")
    for key, ref in PAPER_DYNAMIC_BREAKDOWN.items():
        print(f"{key:>26s} {ref:8.0f} {dyn_pct[key]:11.1f}")
    print("leakage power:")
    for key, ref in PAPER_LEAKAGE_BREAKDOWN.items():
        print(f"{key:>26s} {ref:8.0f} {leak_pct[key]:11.1f}")

    # Shape assertions: ordering and rough magnitudes must match.
    assert dyn_pct["wire_interconnect"] > dyn_pct["routing_buffers"] > dyn_pct["clocking"]
    assert 25 < dyn_pct["wire_interconnect"] < 55       # paper 40
    assert 20 < dyn_pct["routing_buffers"] < 45         # paper 30
    assert 5 < dyn_pct["luts"] < 35                     # paper 20
    assert 4 < dyn_pct["clocking"] < 25                 # paper 10
    assert leak_pct["routing_buffers"] > 50             # paper 70 (dominant)
    assert 5 < leak_pct["routing_srams"] < 22           # paper 12
    assert 4 < leak_pct["routing_pass_transistors"] < 20  # paper 10
    assert 3 < leak_pct["luts"] < 16                    # paper 8
