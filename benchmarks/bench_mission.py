"""Lifetime-mission bench — per-policy degradation on one circuit.

Flies the same heavy-wear mission (cumulative actuations crossing the
Weibull eta inside the window) under the two policy extremes and
prints their degradation curves side by side: ``never`` (no BIST, no
repair — the first victim is permanent) against ``every-epoch-bist``
(scheduled detect-and-repair before each service interval).  The gap
between the curves is the lifetime the maintenance strategy buys,
which is the result the mission simulator exists to produce.

Gate: at the final epoch, scheduled BIST must hold yield at or above
the no-repair baseline.  Equality is legal (a wear regime too gentle
to fault anything degenerates both arms to 1.0) but an inversion can
only mean the policy machinery repaired designs into a worse state
than leaving them alone — a correctness bug, not noise, because both
arms consume identical fault trajectories from the same seeds.

Knobs:

    REPRO_BENCH_MISSION_EPOCHS     epochs per mission (default 4)
    REPRO_BENCH_MISSION_YEARS      device-years simulated (default 40)
    REPRO_BENCH_MISSION_CAMPAIGNS  aging trajectories (default 2)

A ``BENCH_mission.json`` lands next to the other bench telemetry with
per-policy final yield / time-to-first-unrepairable / runtime as its
``stages``, so the bench-history trajectory tracks both the QoR of the
repair machinery and its cost across commits.
"""

import os
import time

import pytest

from repro.faults import MissionSpec, simulate_mission
from repro.netlist import load_circuit
from repro.obs import run_manifest, write_json
from repro.obs.analyze import append_history, summarize_bench
from repro.vpr import run_flow

from conftest import (
    BENCH_ARCH,
    BENCH_HISTORY,
    BENCH_SCALE,
    BENCH_TELEMETRY,
    BENCH_TELEMETRY_DIR,
)

MISSION_EPOCHS = int(os.environ.get("REPRO_BENCH_MISSION_EPOCHS", "4"))
MISSION_YEARS = float(os.environ.get("REPRO_BENCH_MISSION_YEARS", "40"))
MISSION_CAMPAIGNS = int(os.environ.get("REPRO_BENCH_MISSION_CAMPAIGNS", "2"))

POLICIES = ("never", "every-epoch-bist")


@pytest.mark.benchmark(group="mission")
def test_mission_policy_gap(benchmark):
    netlist = load_circuit("tseng", scale=BENCH_SCALE)
    flow = run_flow(netlist, BENCH_ARCH, seed=1)
    assert flow.success, "clean tseng must route in the bench harness"

    def run():
        missions, seconds = {}, {}
        for policy in POLICIES:
            spec = MissionSpec(
                epochs=MISSION_EPOCHS, years=MISSION_YEARS,
                policy=policy, campaigns=MISSION_CAMPAIGNS, base_seed=0)
            t0 = time.perf_counter()
            missions[policy] = simulate_mission(flow, spec)
            seconds[policy] = time.perf_counter() - t0
        return missions, seconds

    missions, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    curves = {p: missions[p].degradation_curve() for p in POLICIES}

    print(f"\n=== Mission bench (tseng, scale {BENCH_SCALE}, "
          f"W = {flow.channel_width}, {MISSION_EPOCHS} epochs over "
          f"{MISSION_YEARS:g} device-years, "
          f"{MISSION_CAMPAIGNS} campaigns) ===")
    print(f"{'policy':>18s} {'yield/epoch':>24s} {'ttf.y':>7s} "
          f"{'repairs':>8s} {'seconds':>8s}")
    for policy in POLICIES:
        mission = missions[policy]
        ttf = mission.time_to_first_unrepairable
        trail = " ".join(f"{row['yield']:.2f}" for row in curves[policy])
        print(f"{policy:>18s} {trail:>24s} "
              f"{'-' if ttf is None else f'{ttf:g}':>7s} "
              f"{sum(t.repairs for t in mission.trajectories):8d} "
              f"{seconds[policy]:8.2f}")

    if BENCH_TELEMETRY:
        stages = {}
        for policy in POLICIES:
            mission = missions[policy]
            ttf = mission.time_to_first_unrepairable
            stages[f"final_yield_{policy}"] = curves[policy][-1]["yield"]
            stages[f"ttf_years_{policy}"] = (
                MISSION_YEARS if ttf is None else ttf)
            stages[f"t_{policy}"] = seconds[policy]
        doc = {
            "circuit": "tseng-mission",
            "manifest": run_manifest(
                arch=BENCH_ARCH,
                extra={"bench_scale": BENCH_SCALE,
                       "mission_epochs": MISSION_EPOCHS,
                       "mission_years": MISSION_YEARS,
                       "mission_campaigns": MISSION_CAMPAIGNS}),
            "telemetry": {"flows": [], "stages": stages},
        }
        path = os.path.join(BENCH_TELEMETRY_DIR, "BENCH_mission.json")
        write_json(path, doc)
        if BENCH_HISTORY:
            append_history(BENCH_HISTORY, [summarize_bench(doc, source=path)])

    assert curves["every-epoch-bist"][-1]["yield"] >= \
        curves["never"][-1]["yield"], (
            "scheduled BIST + repair ended the mission below the "
            "no-repair baseline — the repair ladder made things worse")
