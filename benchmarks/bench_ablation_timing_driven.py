"""Ablation — timing-driven vs routability-driven routing.

VPR's timing-driven mode (criticality-blended node costs + an STA
loop) is part of the paper's methodology ("VPR timing analysis").
This ablation quantifies what it buys on a congested instance: at a
channel width near Wmin, the routability router detours critical nets
and the timing-driven pass recovers critical-path delay at equal
legality.
"""

import pytest

from repro.arch.params import ArchParams
from repro.core import baseline_variant
from repro.netlist import GeneratorParams, generate
from repro.vpr import analyze_timing, run_flow, run_timing_driven_flow

PARAMS = ArchParams(channel_width=32)


def run_ablation():
    circuit = generate(GeneratorParams("td", num_luts=200, ff_fraction=0.25, seed=9))
    fabric = baseline_variant(PARAMS).fabric()
    base_flow = run_flow(circuit, PARAMS)
    assert base_flow.success
    base_report = analyze_timing(
        base_flow.placement, base_flow.routing, base_flow.graph, fabric
    )
    td_flow, td_report = run_timing_driven_flow(circuit, PARAMS, fabric, sta_passes=2)
    assert td_flow.success
    return base_flow, base_report, td_flow, td_report


@pytest.mark.benchmark(group="ablation")
def test_ablation_timing_driven_routing(benchmark):
    base_flow, base_report, td_flow, td_report = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )

    gain = 1.0 - td_report.critical_path / base_report.critical_path
    print("\n=== Ablation: timing-driven routing (W near Wmin) ===")
    print(f"{'router':>16s} {'crit path ns':>13s} {'wirelength':>11s}")
    print(f"{'routability':>16s} {base_report.critical_path * 1e9:13.3f} "
          f"{base_flow.routing.wirelength:11d}")
    print(f"{'timing-driven':>16s} {td_report.critical_path * 1e9:13.3f} "
          f"{td_flow.routing.wirelength:11d}")
    print(f"critical-path improvement: {100 * gain:.1f}%")
    crit_nets = [n for n, c in td_report.net_criticality().items() if c > 0.9]
    print(f"nets above 0.9 criticality after optimisation: {len(crit_nets)}")

    assert td_report.critical_path <= base_report.critical_path + 1e-15
    assert gain > 0.03  # deterministic instance: ~10% on this circuit
    # Timing optimisation must not blow up wirelength.
    assert td_flow.routing.wirelength < 1.3 * base_flow.routing.wirelength