"""Ablation — sensitivity to relay on-resistance (paper Sec. 2.3/5).

The paper's crossbar relays measured ~100 kOhm contacts versus the
2 kOhm of [Parsa 10], and lists "consistently small Ron (< 2 kOhm)" as
future work because "high Ron values are not desirable for FPGA
programmable routing".  This ablation quantifies that: the CMOS-NEM
speed-up as relay Ron sweeps from the 2 kOhm design target to the
100 kOhm measured contacts.
"""

import dataclasses

import pytest

from repro.core import Comparison, VariantConfig, VariantKind, evaluate_design
from repro.core.variants import FpgaVariant, baseline_variant
from repro.nemrelay import SCALED_22NM_CIRCUIT
from repro.netlist import ALTERA4_PARAMS

from conftest import BENCH_SCALE

RON_SWEEP = (2e3, 5e3, 10e3, 30e3, 100e3)


def make_runner(flow_cache, bench_arch):
    params = ALTERA4_PARAMS[3].scaled(BENCH_SCALE)  # ucsb_152_tap_fir

    def run():
        flow = flow_cache.flow(params)
        base = evaluate_design(flow, baseline_variant(bench_arch))
        rows = []
        for r_on in RON_SWEEP:
            relay = dataclasses.replace(SCALED_22NM_CIRCUIT, r_on=r_on)
            variant = FpgaVariant(
                bench_arch,
                VariantConfig(VariantKind.CMOS_NEM_OPT, 8.0, relay=relay),
            )
            point = evaluate_design(flow, variant, frequency=base.frequency)
            rows.append((r_on, Comparison.of(base, point)))
        return rows

    return run


@pytest.mark.benchmark(group="ablation")
def test_ablation_relay_on_resistance(benchmark, flow_cache, bench_arch):
    rows = benchmark.pedantic(make_runner(flow_cache, bench_arch), rounds=1, iterations=1)

    print("\n=== Ablation: relay Ron sensitivity ===")
    print(f"{'Ron (kOhm)':>11s} {'speedup':>8s} {'dyn.red':>8s} {'leak.red':>9s}")
    for r_on, cmp in rows:
        print(f"{r_on / 1e3:11.0f} {cmp.speedup:8.2f} {cmp.dynamic_reduction:8.2f} "
              f"{cmp.leakage_reduction:9.2f}")

    speedups = [cmp.speedup for _r, cmp in rows]
    # Speed-up degrades monotonically as contacts worsen.
    assert speedups == sorted(speedups, reverse=True)
    # At the design-target 2 kOhm there is no speed penalty...
    assert rows[0][1].speedup >= 1.0
    # ...while the measured 100 kOhm contacts clearly are "not
    # desirable for FPGA programmable routing" (paper Sec. 2.3).
    assert rows[-1][1].speedup < rows[0][1].speedup * 0.8
    # Leakage reduction is Ron-independent (relays never leak).
    leaks = [cmp.leakage_reduction for _r, cmp in rows]
    assert max(leaks) - min(leaks) < 0.05 * max(leaks)
