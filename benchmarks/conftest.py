"""Shared infrastructure for the per-figure benchmark harness.

Every paper table/figure has one bench module (see DESIGN.md Sec. 5).
Benches both *time* the reproduction computation (pytest-benchmark)
and *print* the rows/series the paper reports, so running

    pytest benchmarks/ --benchmark-only -s

regenerates the evaluation.  P&R results are cached per circuit at
session scope because several figures share them.

A session-wide `repro.obs.Tracer` is auto-attached, so every flow the
benches run is traced; at session end each traced circuit gets a
``BENCH_<circuit>.json`` with a ``telemetry`` section (per-stage
timings, router convergence) plus one ``BENCH_telemetry.json`` run
summary.

Environment knobs:

    REPRO_BENCH_SCALE   circuit shrink factor (default 0.02; the
                        paper's circuits at full size need hours in
                        pure Python — see DESIGN.md Sec. 6)
    REPRO_BENCH_MCNC    number of MCNC circuits to include (default 6)
    REPRO_BENCH_TELEMETRY      "0" disables the BENCH_*.json outputs
    REPRO_BENCH_TELEMETRY_DIR  output directory (default: cwd)
    REPRO_BENCH_HISTORY        path of a bench-history JSONL; when set,
                               each BENCH_<circuit>.json is also
                               appended as a history row (same format
                               as `repro bench-history append`)
    REPRO_TELEMETRY_DB         path of a telemetry warehouse (sqlite);
                               when set, the session's traced spans are
                               also ingested as one schema-v1 run
                               (idempotent — see `repro db`)
"""

import os

import pytest

from repro.arch import ArchParams
from repro.netlist import ALTERA4_PARAMS, MCNC20_PARAMS, generate
from repro.obs import (
    Tracer,
    reset_tracer,
    run_manifest,
    set_tracer,
    span_to_dict,
    write_json,
)
from repro.obs.analyze import append_history, summarize_bench
from repro.vpr import run_flow

#: Default shrink factor for the P&R figures.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
#: MCNC circuits included in suite-level benches.
BENCH_MCNC_COUNT = int(os.environ.get("REPRO_BENCH_MCNC", "6"))

#: Evaluation channel width for the scaled workloads (the scaled
#: counterpart of the paper's W = 118; see bench_channel_width.py for
#: the Wmin derivation that motivates it).
BENCH_ARCH = ArchParams(channel_width=64)


def bench_suite_params():
    """The circuits suite-level benches run: the 4 Altera circuits the
    paper reports individually plus the first BENCH_MCNC_COUNT of the
    20 largest MCNC circuits (geometric-mean series)."""
    mcnc = MCNC20_PARAMS[:BENCH_MCNC_COUNT]
    return [p.scaled(BENCH_SCALE) for p in list(ALTERA4_PARAMS) + list(mcnc)]


class FlowCache:
    """Lazy per-circuit pack/place/route cache shared by benches."""

    def __init__(self):
        self._flows = {}

    def flow(self, params):
        if params.name not in self._flows:
            netlist = generate(params)
            flow = run_flow(netlist, BENCH_ARCH, seed=1)
            if not flow.success:
                # One retry at a wider channel keeps the harness robust
                # to occasionally hard instances at the scaled W.
                flow = run_flow(
                    netlist, BENCH_ARCH, seed=1,
                    channel_width=int(BENCH_ARCH.channel_width * 1.3),
                )
            assert flow.success, f"{params.name} unroutable in bench harness"
            self._flows[params.name] = flow
        return self._flows[params.name]


@pytest.fixture(scope="session")
def flow_cache():
    return FlowCache()


@pytest.fixture(scope="session")
def bench_arch():
    return BENCH_ARCH


#: "0" disables BENCH_*.json telemetry outputs.
BENCH_TELEMETRY = os.environ.get("REPRO_BENCH_TELEMETRY", "1") != "0"
#: Where the BENCH_*.json files land.
BENCH_TELEMETRY_DIR = os.environ.get("REPRO_BENCH_TELEMETRY_DIR", ".")
#: When set, bench summaries are also appended to this history file.
BENCH_HISTORY = os.environ.get("REPRO_BENCH_HISTORY", "")
#: When set, the session run is also ingested into this warehouse.
TELEMETRY_DB = os.environ.get("REPRO_TELEMETRY_DB", "")


def _write_bench_telemetry(tracer: Tracer) -> None:
    """One BENCH_<circuit>.json per traced flow + a session summary."""
    manifest = run_manifest(
        arch=BENCH_ARCH,
        extra={"bench_scale": BENCH_SCALE, "bench_mcnc": BENCH_MCNC_COUNT},
    )
    per_circuit = {}
    for root in tracer.roots:
        circuit = root.attrs.get("circuit")
        if root.name in ("flow.run", "flow.timing_driven") and circuit:
            per_circuit.setdefault(circuit, []).append(span_to_dict(root))
    history_rows = []
    for circuit, spans in per_circuit.items():
        path = os.path.join(BENCH_TELEMETRY_DIR, f"BENCH_{circuit}.json")
        doc = {
            "circuit": circuit,
            "manifest": manifest,
            "telemetry": {
                "flows": spans,
                "stages": {
                    stage: sum(
                        child["duration_s"] or 0.0
                        for span in spans
                        for child in span["children"]
                        if child["name"] == stage
                    )
                    for stage in ("flow.pack", "flow.place", "flow.route")
                },
            },
        }
        write_json(path, doc)
        if BENCH_HISTORY:
            history_rows.append(summarize_bench(doc, source=path))
    if BENCH_HISTORY and history_rows:
        append_history(BENCH_HISTORY, history_rows)
    write_json(os.path.join(BENCH_TELEMETRY_DIR, "BENCH_telemetry.json"), {
        "manifest": manifest,
        "circuits": sorted(per_circuit),
        "telemetry": {
            "spans": [span_to_dict(root) for root in tracer.roots],
        },
    })
    if TELEMETRY_DB:
        from repro.obs import store, telemetry_records

        con = store.connect(TELEMETRY_DB)
        try:
            store.ingest_records(
                con, telemetry_records(manifest, tracer),
                source="benchmarks session", label="bench")
        finally:
            con.close()


@pytest.fixture(scope="session", autouse=True)
def bench_tracer():
    """Trace every flow the benches run; dump BENCH_*.json at exit."""
    tracer = Tracer()
    token = set_tracer(tracer)
    try:
        yield tracer
    finally:
        reset_tracer(token)
        if BENCH_TELEMETRY and tracer.roots:
            _write_bench_telemetry(tracer)
