"""Fig. 4 — half-select programming scheme validity.

Paper: three levels {Vhold, -Vselect, Vhold+Vselect} satisfying
Vpo < Vhold < Vpi, Vpo < Vhold+Vselect < Vpi, Vhold+2Vselect > Vpi
program an array row by row; every non-selected relay stays inside the
hysteresis window.  This bench solves the levels for the paper's
device, verifies the Fig. 4 constraints, and programs a row-by-row
pattern on an 8x8 array counting disturbances (must be zero).
"""

import pytest

from repro.crossbar import HalfSelectProgrammer, solve_voltages, uniform_crossbar
from repro.nemrelay import ActuationModel, FABRICATED_DEVICE, OIL, POLY_PLATINUM

MODEL = ActuationModel(POLY_PLATINUM, FABRICATED_DEVICE, OIL)


def run_fig4():
    voltages = solve_voltages([MODEL.pull_in], [MODEL.pull_out])
    crossbar = uniform_crossbar(8, 8, MODEL)
    programmer = HalfSelectProgrammer(crossbar, voltages)
    targets = {(r, c) for r in range(8) for c in range(8) if (r * 8 + c) % 3 == 0}
    configured = programmer.program(targets)
    return voltages, targets, configured


@pytest.mark.benchmark(group="fig4")
def test_fig4_halfselect_scheme(benchmark):
    voltages, targets, configured = benchmark(run_fig4)

    print("\n=== Fig. 4: half-select programming voltages ===")
    print(f"device: Vpi = {MODEL.pull_in:.2f} V, Vpo = {MODEL.pull_out:.2f} V")
    print(f"solved: Vhold = {voltages.v_hold:.2f} V, Vselect = {voltages.v_select:.2f} V")
    print(f"  half select (Vhold + Vselect)  = {voltages.half_select:.2f} V")
    print(f"  full select (Vhold + 2Vselect) = {voltages.full_select:.2f} V")
    print("constraints (paper Fig. 4):")
    print(f"  Vpo < Vhold < Vpi            : {MODEL.pull_out:.2f} < {voltages.v_hold:.2f} < {MODEL.pull_in:.2f}")
    print(f"  Vpo < Vhold + Vselect < Vpi  : {MODEL.pull_out:.2f} < {voltages.half_select:.2f} < {MODEL.pull_in:.2f}")
    print(f"  Vhold + 2 Vselect > Vpi      : {voltages.full_select:.2f} > {MODEL.pull_in:.2f}")
    print(f"8x8 array, {len(targets)} targets programmed row-by-row: "
          f"{len(configured)} closed, disturbances = {len(configured ^ targets)}")

    assert voltages.is_valid(MODEL.pull_in, MODEL.pull_out)
    assert MODEL.pull_out < voltages.v_hold < MODEL.pull_in
    assert MODEL.pull_out < voltages.half_select < MODEL.pull_in
    assert voltages.full_select > MODEL.pull_in
    assert configured == targets  # zero disturbance
