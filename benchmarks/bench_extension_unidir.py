"""Extension — bidirectional (relay-friendly) vs unidirectional routing.

The paper's fabric is bidirectional: pass transistors — and NEM relays
— conduct both ways, which modern CMOS FPGAs gave up for single-driver
(unidirectional, mux-based) wires.  Relays make bidirectional routing
attractive again: a metal contact has no preferred direction and no
driver mux to pay for.  This bench quantifies the track-count side of
that trade-off: the minimum channel width each fabric needs for the
same circuits.
"""

import pytest

from repro.arch.params import ArchParams
from repro.netlist import MCNC20_PARAMS, generate
from repro.vpr import find_min_channel_width
from repro.vpr.pack import pack
from repro.vpr.place import place

from conftest import BENCH_SCALE

CIRCUITS = ["alu4", "seq", "tseng"]


def run_comparison():
    params_by_name = {p.name: p for p in MCNC20_PARAMS}
    rows = []
    for name in CIRCUITS:
        netlist = generate(params_by_name[name].scaled(BENCH_SCALE * 2))
        wmins = {}
        wirelengths = {}
        for mode in ("bidir", "unidir"):
            arch = ArchParams(channel_width=48, directionality=mode)
            clustered = pack(netlist, arch)
            placement = place(clustered, seed=1)
            wmin, result, _graph = find_min_channel_width(placement, arch, start=8)
            wmins[mode] = wmin
            wirelengths[mode] = result.wirelength
        rows.append((name, netlist.num_luts, wmins, wirelengths))
    return rows


@pytest.mark.benchmark(group="extension")
def test_extension_unidirectional_comparison(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    print("\n=== Extension: bidirectional vs unidirectional routing ===")
    print(f"{'circuit':>10s} {'LUTs':>6s} {'Wmin bidir':>11s} {'Wmin unidir':>12s} "
          f"{'ratio':>6s} {'WL bidir':>9s} {'WL unidir':>10s}")
    for name, luts, wmins, wl in rows:
        ratio = wmins["unidir"] / wmins["bidir"]
        print(f"{name:>10s} {luts:6d} {wmins['bidir']:11d} {wmins['unidir']:12d} "
              f"{ratio:6.2f} {wl['bidir']:9d} {wl['unidir']:10d}")
    print("\n(bidirectional wires carry traffic both ways, so the relay fabric")
    print(" routes at ~1.5x fewer tracks than single-driver routing here —")
    print(" an architectural argument *for* relay switches the paper implies)")

    for _name, _luts, wmins, _wl in rows:
        assert wmins["unidir"] > wmins["bidir"]
        assert wmins["unidir"] < 4 * wmins["bidir"]
