"""Fig. 12 — power-speed trade-offs, CMOS-NEM vs CMOS-only.

Paper Fig. 12 plots, for the four large Altera circuits and the
geometric mean of the 20 largest MCNC circuits, (a) dynamic power
reduction vs speed-up and (b) leakage power reduction vs speed-up as
wire-buffer downsizing sweeps; the preferred corner sits at
speed-up ~1 with ~2x dynamic and ~10x leakage reduction.

This bench regenerates both curve families on the scaled suite (see
conftest for the scale) and asserts the curve shapes: monotone
trade-off, crossover bracketing, and who-wins ordering.
"""

import pytest

from repro.core import fig12_series, geomean_curve, sweep_circuit
from repro.netlist import ALTERA4_PARAMS

from conftest import BENCH_SCALE, bench_suite_params


def make_runner(flow_cache, bench_arch):
    suite = bench_suite_params()
    altera_names = {p.name for p in ALTERA4_PARAMS}

    def run():
        curves = []
        for params in suite:
            flow = flow_cache.flow(params)
            curves.append(sweep_circuit(flow, bench_arch))
        altera_curves = [c for c in curves if c.circuit in altera_names]
        mcnc_curves = [c for c in curves if c.circuit not in altera_names]
        series = list(altera_curves)
        if mcnc_curves:
            series.append(geomean_curve(mcnc_curves))
        return series

    return run


@pytest.mark.benchmark(group="fig12")
def test_fig12_tradeoff_curves(benchmark, flow_cache, bench_arch):
    curves = benchmark.pedantic(make_runner(flow_cache, bench_arch), rounds=1, iterations=1)

    print(f"\n=== Fig. 12: power-speed trade-offs (suite scale {BENCH_SCALE}) ===")
    print("(a) dynamic power reduction vs speed-up / "
          "(b) leakage power reduction vs speed-up")
    for curve in curves:
        series = fig12_series(curve)
        print(f"\n{curve.circuit}:")
        print(f"{'downsize':>9s} {'speed-up':>9s} {'dyn.red':>8s} {'leak.red':>9s}")
        for ds, sp, dyn, leak in zip(
            series["downsize"], series["speedup"],
            series["dynamic_reduction"], series["leakage_reduction"],
        ):
            print(f"{ds:9.1f} {sp:9.2f} {dyn:8.2f} {leak:9.2f}")
        corner = curve.preferred_corner()
        print(f"preferred corner: downsize {corner.downsize:.0f} -> "
              f"speed-up {corner.speedup:.2f}, dyn {corner.dynamic_reduction:.2f}x, "
              f"leak {corner.leakage_reduction:.2f}x")

    for curve in curves:
        speedups = [p.speedup for p in curve.points]
        leaks = [p.leakage_reduction for p in curve.points]
        dyns = [p.dynamic_reduction for p in curve.points]
        # Monotone trade-off along the downsizing sweep.
        assert speedups == sorted(speedups, reverse=True), curve.circuit
        assert leaks == sorted(leaks), curve.circuit
        assert dyns == sorted(dyns), curve.circuit
        # Downsizing costs meaningful speed (the x-axis of Fig. 12
        # spans a wide speed-up range); very small scaled circuits
        # need not cross below 1.0, but the span must be real.
        assert speedups[0] > 1.0, curve.circuit
        assert speedups[-1] < 0.9 * speedups[0], curve.circuit
        # At the corner: large leakage and dynamic reductions (paper
        # 10x / 2x; shape check at scaled workloads).
        corner = curve.preferred_corner()
        assert corner.speedup >= 1.0
        assert corner.leakage_reduction > 4.0, curve.circuit
        assert corner.dynamic_reduction > 1.4, curve.circuit
