"""Fig. 6 — Vpi/Vpo distributions of 100 relays and noise margins.

Paper: 100 nominally identical relays measured on the same wafer show
Vpi ~ 5.7-6.9 V and Vpo ~ 2-3.4 V; a valid (Vhold, Vselect) exists
but with very small noise margins; feasibility requires
min{Vpi-Vpo} > Vpi_max - Vpi_min.
"""

import pytest

from repro.crossbar import analyze_population
from repro.nemrelay import (
    FABRICATED_DEVICE,
    FIG6_VARIATION_SPEC,
    OIL,
    POLY_PLATINUM,
    sample_population,
)


def run_fig6():
    population = sample_population(
        POLY_PLATINUM, FABRICATED_DEVICE, OIL, count=100, spec=FIG6_VARIATION_SPEC
    )
    return population, analyze_population(population)


@pytest.mark.benchmark(group="fig6")
def test_fig6_distributions_and_margins(benchmark):
    population, analysis = benchmark(run_fig6)

    print("\n=== Fig. 6: Vpi/Vpo distributions, 100 relays ===")
    print(f"{'quantity':>22s} {'paper':>14s} {'measured':>16s}")
    print(f"{'Vpi range (V)':>22s} {'~5.7 - 6.9':>14s} "
          f"{population.vpi_min:7.2f} - {population.vpi_max:.2f}")
    print(f"{'Vpo range (V)':>22s} {'~2.0 - 3.4':>14s} "
          f"{population.vpo_min:7.2f} - {population.vpo_max:.2f}")
    print(f"feasibility: min(Vpi-Vpo) = {population.min_hysteresis_window:.2f} V "
          f"> Vpi spread = {population.vpi_spread:.2f} V "
          f"-> {population.half_select_feasible()}")
    v, m = analysis.voltages, analysis.margins
    print(f"operating point: Vhold = {v.v_hold:.2f} V, Vselect = {v.v_select:.2f} V")
    print(f"noise margins: hold {m.hold_above_vpo:.2f} V, "
          f"half-select {m.half_select_below_vpi:.2f} V, "
          f"full-select {m.full_select_above_vpi:.2f} V (paper: 'very small')")

    edges, vpi_counts, vpo_counts = population.histogram(bins=28)
    print("histogram (V : Vpo count / Vpi count):")
    for i in range(len(vpi_counts)):
        if vpi_counts[i] or vpo_counts[i]:
            print(f"  {edges[i]:5.2f}  {'o' * int(vpo_counts[i])}{'#' * int(vpi_counts[i])}")

    assert population.count == 100
    assert 5.4 < population.vpi_min < population.vpi_max < 7.3
    assert 1.0 < population.vpo_min < population.vpo_max < 4.0
    assert population.half_select_feasible()
    assert analysis.feasible
    assert 0 < m.worst < 1.0  # positive but small margins
