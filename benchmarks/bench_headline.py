"""Headline claims — the abstract's simultaneous reductions.

Paper: CMOS-NEM FPGAs with selective buffer removal/downsizing achieve
10x leakage, 2x dynamic and 2x area reduction with no application
speed penalty vs a 22nm CMOS-only FPGA; without the technique only
2x leakage, 1.3x dynamic and 1.8x area.

This bench aggregates the Fig. 12 sweep over the scaled suite into the
paper's headline table (geometric means, preferred corner).
"""

import pytest

from repro.core import (
    PAPER_HEADLINE,
    PAPER_NAIVE,
    format_headline,
    headline_summary,
    sweep_circuit,
)

from conftest import bench_suite_params


def make_runner(flow_cache, bench_arch):
    suite = bench_suite_params()

    def run():
        curves = [sweep_circuit(flow_cache.flow(p), bench_arch) for p in suite]
        return headline_summary(curves)

    return run


@pytest.mark.benchmark(group="headline")
def test_headline_claims(benchmark, flow_cache, bench_arch):
    summary = benchmark.pedantic(make_runner(flow_cache, bench_arch), rounds=1, iterations=1)

    print("\n=== Headline: paper abstract vs reproduction (geomean) ===\n")
    print(format_headline(summary))
    print("\nper-circuit preferred corners:")
    print(f"{'circuit':>22s} {'speedup':>8s} {'dyn.red':>8s} {'leak.red':>9s} {'area.red':>9s}")
    for name, corner in summary.per_circuit.items():
        print(f"{name:>22s} {corner.speedup:8.2f} {corner.dynamic_reduction:8.2f} "
              f"{corner.leakage_reduction:9.2f} {corner.area_reduction:9.2f}")

    corner = summary.corner
    naive = summary.naive
    # Optimised: no speed penalty, large simultaneous reductions.
    assert corner.speedup >= 1.0                      # paper: 1.0x
    assert corner.leakage_reduction > 5.0             # paper: 10x
    assert corner.dynamic_reduction > 1.5             # paper: 2x
    assert 1.5 < corner.area_reduction < 3.0          # paper: 2x
    # Naive lands near the paper's 1.3x / 2x / 1.8x bands.
    assert 1.1 < naive.dynamic_reduction < 1.6        # paper: 1.3x
    assert 1.4 < naive.leakage_reduction < 3.0        # paper: 2x
    assert 1.5 < naive.area_reduction < 3.0           # paper: 1.8x
    # The technique's value: optimised clearly beats naive.
    assert corner.leakage_reduction > 2 * naive.leakage_reduction
    assert corner.dynamic_reduction > naive.dynamic_reduction
