"""FabricIR micro-bench — legacy object graph vs the flat IR.

Pre-refactor, every channel-width probe and every repeat route built a
fresh `RRGraph` object graph and re-derived per-node costs in Python
loops.  The IR path builds flat arrays once per ``(ArchParams, nx,
ny)`` and serves repeats from the keyed cache, leaving only PathFinder
itself on the per-probe bill.  This bench times both arms on a
tseng-class circuit at the evaluation width and checks the QoR is
bit-identical — the speedup must come from representation, not from
routing differently.
"""

import time

import pytest

from repro.arch.rrgraph import RRGraph
from repro.fabric import fabric_cache, get_fabric
from repro.netlist import MCNC20_PARAMS
from repro.vpr import find_min_channel_width, route_design
from repro.vpr.route import PathFinderRouter, build_route_nets

from conftest import BENCH_ARCH, BENCH_SCALE

#: Repeat probes per arm: what a Wmin search + variant evaluation loop
#: asks of one width in practice.
PROBES = 5

#: Conservative gate below the observed ~3x so machine noise cannot
#: flake CI; the printed table reports the real figure (target >= 2x).
MIN_SPEEDUP = 1.5


def _tseng_placement(flow_cache):
    params = next(p for p in MCNC20_PARAMS if p.name == "tseng")
    return flow_cache.flow(params.scaled(BENCH_SCALE)).placement


def _tree_shapes(routing):
    return {
        name: sorted(tree.parent.items())
        for name, tree in routing.trees.items()
    }


@pytest.mark.benchmark(group="fabric-ir")
def test_fabric_ir_route_speedup(benchmark, flow_cache):
    placement = _tseng_placement(flow_cache)
    nets = build_route_nets(placement)
    nx, ny = placement.grid_width, placement.grid_height

    def legacy_probe():
        graph = RRGraph(BENCH_ARCH, nx, ny)  # rebuilt every probe
        return PathFinderRouter(graph).route(nets)

    def ir_probe():
        ir = get_fabric(BENCH_ARCH, nx, ny)  # cache after first probe
        return PathFinderRouter(ir).route(nets)

    def run():
        ir_probe()  # populate the cache: steady-state comparison
        t0 = time.perf_counter()
        for _ in range(PROBES):
            r_legacy = legacy_probe()
        t_legacy = (time.perf_counter() - t0) / PROBES
        t0 = time.perf_counter()
        for _ in range(PROBES):
            r_ir = ir_probe()
        t_ir = (time.perf_counter() - t0) / PROBES
        return t_legacy, t_ir, r_legacy, r_ir

    t_legacy, t_ir, r_legacy, r_ir = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = t_legacy / t_ir

    print(f"\n=== FabricIR route micro-bench (tseng, scale {BENCH_SCALE}, "
          f"W = {BENCH_ARCH.channel_width}) ===")
    print(f"{'arm':>18s} {'ms/probe':>10s}")
    print(f"{'legacy rebuild':>18s} {t_legacy * 1e3:10.1f}")
    print(f"{'FabricIR cached':>18s} {t_ir * 1e3:10.1f}")
    print(f"speedup: {speedup:.2f}x over {PROBES} probes (target >= 2x)")

    # Identical QoR: the IR must route the same, not just fast.
    assert r_legacy.success and r_ir.success
    assert r_legacy.wirelength == r_ir.wirelength
    assert r_legacy.iterations == r_ir.iterations
    assert _tree_shapes(r_legacy) == _tree_shapes(r_ir)
    assert speedup >= MIN_SPEEDUP, (
        f"FabricIR probe speedup {speedup:.2f}x below {MIN_SPEEDUP}x gate"
    )


@pytest.mark.benchmark(group="fabric-ir")
def test_wmin_search_reuses_cached_fabric(benchmark, flow_cache):
    """The Wmin binary search + final route must hit the IR cache.

    Every probe width lands in the cache; routing the design at the
    derived Wmin afterwards (what the flow and every variant
    evaluation do) reuses a probe's IR instead of rebuilding.
    """
    placement = _tseng_placement(flow_cache)
    cache = fabric_cache()

    def run():
        cache.clear()
        hits_before, misses_before = cache.hits, cache.misses
        wmin, _result, search_graph = find_min_channel_width(
            placement, BENCH_ARCH, start=16
        )
        routing, graph = route_design(placement, BENCH_ARCH, channel_width=wmin)
        return (
            wmin, routing, graph, search_graph,
            cache.hits - hits_before, cache.misses - misses_before,
        )

    wmin, routing, graph, search_graph, hits, misses = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\nwmin = {wmin}: {misses} fabric builds, {hits} cache hits "
          f"across search + final route")
    assert routing.success
    assert hits >= 1, "final route at Wmin must reuse a probe's FabricIR"
    assert graph is search_graph, "same width -> same cached IR instance"
