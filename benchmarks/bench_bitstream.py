"""Extension — configuring a routed design on the relay fabric.

The executable bridge between the paper's halves: extract the
conducting-switch set of a routed application (the relay "bitstream"),
arrange it into per-tile crossbar arrays, program every array through
the Sec. 2 half-select protocol on real relay models, and verify the
programmed fabric reconstructs every routed net.
"""

import pytest

from repro.arch.tile import build_inventory
from repro.config import extract_bitstream, program_fabric, verify_bitstream_connectivity
from repro.crossbar import configuration_cost, solve_voltages
from repro.nemrelay import scaled_relay, switching_delay
from repro.netlist import MCNC20_PARAMS

from conftest import BENCH_SCALE


def make_runner(flow_cache, bench_arch):
    params = next(p for p in MCNC20_PARAMS if p.name == "s38417").scaled(BENCH_SCALE)

    def run():
        flow = flow_cache.flow(params)
        bitstream = extract_bitstream(flow.routing, flow.graph)
        report = program_fabric(bitstream)
        verified = verify_bitstream_connectivity(bitstream, flow.routing, flow.graph)
        return flow, bitstream, report, verified

    return run


@pytest.mark.benchmark(group="bitstream")
def test_bitstream_configuration(benchmark, flow_cache, bench_arch):
    flow, bitstream, report, verified = benchmark.pedantic(
        make_runner(flow_cache, bench_arch), rounds=1, iterations=1
    )

    inventory = build_inventory(bench_arch)
    relay = scaled_relay()
    voltages = solve_voltages([relay.pull_in_voltage], [relay.pull_out_voltage])
    cost = configuration_cost(
        num_relays=max(bitstream.total_switches, 1),
        rows_per_array=32,
        switching_time=switching_delay(relay.model),
        voltages=voltages,
        arrays_in_parallel=max(len(bitstream.tiles), 1),
    )

    print("\n=== Bitstream: routed design -> relay configuration ===")
    print(f"circuit: {flow.netlist.name} ({flow.netlist.num_luts} LUTs, "
          f"{len(flow.routing.trees)} routed nets)")
    print(f"conducting switches: {bitstream.total_switches} over "
          f"{len(bitstream.tiles)} tiles "
          f"({100 * bitstream.utilization(inventory.routing_switches):.1f}% of "
          f"routing switches in used tiles)")
    print(f"half-select programming: {report.arrays_programmed} arrays, "
          f"{report.relays_closed} relays closed, "
          f"{report.row_steps} row steps, failures: {len(report.failures)}")
    print(f"connectivity re-verified from programmed switches: {verified}")
    print(f"configuration (per-tile parallel): {cost.total_time * 1e9:.0f} ns, "
          f"{cost.total_energy * 1e15:.1f} fJ")

    assert bitstream.total_switches > 0
    assert report.success
    assert report.relays_closed == bitstream.total_switches
    assert verified
    assert cost.total_time < 1e-3
