"""Table 1 — FPGA architecture parameters and tile composition.

Paper Table 1: N=10, K=4, L=4, Fcin=0.2, Fcout=0.1, Fs=3; the derived
channel width is W = 118.  This bench regenerates the parameter table,
the per-tile component inventory they imply, and times the routing-
resource graph construction for a representative fabric.
"""

import pytest

from repro.arch import PAPER_ARCH, RRGraph, build_inventory

PAPER_TABLE1 = {
    "N (LUTs per LB)": 10,
    "K (inputs per LUT)": 4,
    "L (segment length)": 4,
    "Fcin": 0.2,
    "Fcout": 0.1,
    "Fs": 3,
}


def run_table1():
    inventory = build_inventory(PAPER_ARCH)
    graph = RRGraph(PAPER_ARCH.with_channel_width(40), nx=8, ny=8)
    return inventory, graph


@pytest.mark.benchmark(group="table1")
def test_table1_architecture(benchmark):
    inventory, graph = benchmark(run_table1)

    print("\n=== Table 1: architecture parameters ===")
    model = {
        "N (LUTs per LB)": PAPER_ARCH.n,
        "K (inputs per LUT)": PAPER_ARCH.k,
        "L (segment length)": PAPER_ARCH.segment_length,
        "Fcin": PAPER_ARCH.fc_in,
        "Fcout": PAPER_ARCH.fc_out,
        "Fs": PAPER_ARCH.fs,
    }
    print(f"{'parameter':>22s} {'paper':>8s} {'model':>8s}")
    for key, paper_value in PAPER_TABLE1.items():
        print(f"{key:>22s} {paper_value!s:>8s} {model[key]!s:>8s}")
    print(f"{'W (channel width)':>22s} {'118':>8s} {PAPER_ARCH.channel_width!s:>8s}")
    print(f"{'I (LB inputs)':>22s} {'(K/2)(N+1)':>8s} {PAPER_ARCH.inputs_per_lb!s:>8s}")

    print("\nper-tile inventory at W = 118:")
    print(f"  routing buffers: {inventory.lb_input_buffers} LB-in + "
          f"{inventory.lb_output_buffers} LB-out + {inventory.wire_buffers} wire")
    print(f"  routing switches: {inventory.cb_switches} CB + {inventory.sb_switches} SB; "
          f"crossbar crosspoints: {inventory.crossbar_switches}")
    print(f"  configuration bits: {inventory.routing_sram_bits} routing + "
          f"{inventory.crossbar_sram_bits} crossbar + {inventory.lut_sram_bits} LUT")
    print(f"RR graph (8x8 tiles, W=40): {graph.num_nodes} nodes, {graph.num_edges} edges")

    assert model == PAPER_TABLE1
    assert PAPER_ARCH.channel_width == 118
    assert PAPER_ARCH.inputs_per_lb == 22
    assert inventory.wire_buffers == 59  # ceil(2 * 118 / 4)
    assert graph.num_nodes > 0 and graph.num_edges > 0
