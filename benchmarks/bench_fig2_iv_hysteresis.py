"""Fig. 2b — measured I-V hysteresis of the fabricated NEM relay.

Paper: Vpi = 6.2 V, Vpo = 2-3.4 V, zero off-state leakage below the
10 pA noise floor, multiple overlaid pull-in/pull-out cycles, 100 nA
compliance.  This bench regenerates the swept curve from the device
model and checks those anchors.
"""

import pytest

from repro.nemrelay import COMPLIANCE_A, NOISE_FLOOR_A, fabricated_relay, repeated_sweeps, sweep_iv


def run_fig2():
    relay = fabricated_relay()
    curves = repeated_sweeps(relay, cycles=3, vds=0.1)
    return relay, curves


@pytest.mark.benchmark(group="fig2")
def test_fig2_iv_hysteresis(benchmark):
    relay, curves = benchmark(run_fig2)

    print("\n=== Fig. 2b: I-V characteristics, fabricated relay ===")
    print(f"{'cycle':>6s} {'Vpi (V)':>9s} {'Vpo (V)':>9s} {'window (V)':>11s}")
    for i, curve in enumerate(curves):
        print(f"{i + 1:6d} {curve.pull_in_observed:9.2f} "
              f"{curve.pull_out_observed:9.2f} {curve.hysteresis_window:11.2f}")
    off = [p.ids for p in curves[0].points if p.state.value == "pulled-out"]
    on = [p.ids for p in curves[0].points if p.state.value == "pulled-in"]
    print(f"off-state current: {max(off):.1e} A (noise floor {NOISE_FLOOR_A:.0e} A)")
    print(f"on-state current : {max(on):.1e} A (compliance {COMPLIANCE_A:.0e} A)")
    print("paper: Vpi = 6.2 V, Vpo = 2-3.4 V (analytic Vpo sits above the")
    print("measured band because surface forces are neglected — as the paper notes)")

    # Anchors.
    for curve in curves:
        assert curve.pull_in_observed == pytest.approx(6.2, abs=0.1)
        assert curve.pull_out_observed < curve.pull_in_observed
        assert curve.hysteresis_window > 1.0
    assert max(off) <= NOISE_FLOOR_A
    assert max(on) == pytest.approx(COMPLIANCE_A)
