"""Extension — architecture exploration (paper Sec. 5 future work).

"Exploration of new FPGA architectures that utilize unique properties
of NEM relays": with relays in the BEOL stack, connection-block
flexibility is nearly free in CMOS area, and segment-length trade-offs
re-balance.  This bench runs both sweeps (real P&R per point) and
checks the expected directions.
"""

import pytest

from repro.core import format_sweep, sweep_connection_flexibility, sweep_segment_length
from repro.netlist import MCNC20_PARAMS, generate

from conftest import BENCH_ARCH, BENCH_SCALE


def run_exploration():
    params = next(p for p in MCNC20_PARAMS if p.name == "seq").scaled(BENCH_SCALE * 2)
    netlist = generate(params)
    seg = sweep_segment_length(netlist, BENCH_ARCH, lengths=(1, 2, 4, 8), seed=1)
    fc = sweep_connection_flexibility(
        netlist, BENCH_ARCH, fc_in_values=(0.1, 0.2, 0.4), seed=1
    )
    return seg, fc


@pytest.mark.benchmark(group="exploration")
def test_exploration_architecture_sweeps(benchmark):
    seg, fc = benchmark.pedantic(run_exploration, rounds=1, iterations=1)

    print("\n=== Future work: segment-length sweep (CMOS-NEM) ===")
    print(format_sweep(seg, "segment_length"))
    print("\n=== Future work: connection-flexibility sweep ===")
    print(format_sweep(fc, "fc_in"))

    # Every point completed with a routed design and sound ratios.
    for p in seg + fc:
        assert p.wmin > 0
        assert p.nem_leakage_reduction > 1.0
        assert p.nem_critical_path > 0
    # Richer Fc costs relays but does not increase channel demand.
    assert fc[-1].relay_count_per_tile > fc[0].relay_count_per_tile
    assert fc[-1].wmin <= fc[0].wmin + 2
    # Extreme segment lengths differ in routed wirelength (L=1 uses
    # many short segments; L=8 rounds every route up to 8 tiles).
    wl = {p.params.segment_length: p.wirelength for p in seg}
    assert wl[8] != wl[1]
