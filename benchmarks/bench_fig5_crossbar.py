"""Fig. 5 — 2x2 crossbar program / test / reset demonstration.

Paper: the fabricated 2x2 crossbar is configured by half-select
(Vhold = 5.2 V, Vselect = 0.8 V), verified with two 180-degree
phase-shifted pulses on the beams while monitoring the drains, reset
by grounding the gates, and re-programmed; all configurations were
exhaustively verified.  This bench regenerates both example sessions
(Figs. 5b/5c) and the 16-configuration exhaustive sweep.
"""

import pytest

from repro.crossbar import (
    PAPER_2X2_VOLTAGES,
    exhaustive_verification,
    simulate_session,
    uniform_crossbar,
)
from repro.nemrelay import (
    ActuationModel,
    CROSSBAR_MEASURED_CIRCUIT,
    FABRICATED_DEVICE,
    OIL,
    POLY_PLATINUM,
)

MODEL = ActuationModel(POLY_PLATINUM, FABRICATED_DEVICE, OIL)


def make_crossbar():
    return uniform_crossbar(2, 2, MODEL, circuit=CROSSBAR_MEASURED_CIRCUIT)


def run_fig5():
    sessions = {
        "5b": simulate_session(make_crossbar(), PAPER_2X2_VOLTAGES, {(0, 0), (1, 1)}),
        "5c": simulate_session(make_crossbar(), PAPER_2X2_VOLTAGES, {(0, 1)}),
    }
    exhaustive = exhaustive_verification(make_crossbar, PAPER_2X2_VOLTAGES, 2, 2)
    return sessions, exhaustive


@pytest.mark.benchmark(group="fig5")
def test_fig5_crossbar_sessions(benchmark):
    sessions, exhaustive = benchmark(run_fig5)

    print("\n=== Fig. 5: 2x2 crossbar program/test/reset ===")
    print(f"programming at Vhold = {PAPER_2X2_VOLTAGES.v_hold} V, "
          f"Vselect = {PAPER_2X2_VOLTAGES.v_select} V (paper values); "
          f"crossbar Ron ~ {CROSSBAR_MEASURED_CIRCUIT.r_on / 1e3:.0f} kOhm (measured)")
    for label, session in sessions.items():
        amps = [session.drain_amplitude(r) for r in range(2)]
        print(f"config {label}: closed {sorted(session.configuration)}; "
              f"test-phase drain amplitudes {amps[0]:.2f} / {amps[1]:.2f} V; "
              f"reset ok: {session.reset_ok}")
    passed = sum(exhaustive.values())
    print(f"exhaustive verification: {passed}/{len(exhaustive)} configurations "
          f"program, read out and reset correctly (paper: all verified)")

    # Fig. 5b: both drains active; Fig. 5c: only drain 1 active.
    assert sessions["5b"].configuration == {(0, 0), (1, 1)}
    assert sessions["5b"].drain_amplitude(0) > 0.4
    assert sessions["5b"].drain_amplitude(1) > 0.4
    assert sessions["5c"].configuration == {(0, 1)}
    assert sessions["5c"].drain_amplitude(0) > 0.4
    assert sessions["5c"].drain_amplitude(1) == 0.0
    assert all(s.reset_ok for s in sessions.values())
    assert passed == 16
