"""Fig. 11 — equivalent circuit and 22nm-scaled device parameters.

Paper: the scaled relay has L = 275 nm, h = 11 nm, g0 = 11 nm,
gmin = 3.6 nm; equivalent circuit Ron = 2 kOhm (experimental),
Con = 20 aF, Coff = 6.7 aF (simulation); operation near 1 V; the
device is in one of on/off states after configuration and never
switches during normal FPGA operation (mechanical delay > 1 ns).
"""

import pytest

from repro.nemrelay import (
    SCALED_22NM_CIRCUIT,
    SCALED_22NM_DEVICE,
    scaled_relay,
    switching_delay,
)


def run_fig11():
    relay = scaled_relay()
    delay = switching_delay(relay.model)
    return relay, delay


@pytest.mark.benchmark(group="fig11")
def test_fig11_scaled_device(benchmark):
    relay, delay = benchmark(run_fig11)

    print("\n=== Fig. 11: 22nm scaled NEM relay ===")
    g = SCALED_22NM_DEVICE
    print(f"{'parameter':>14s} {'paper':>10s} {'model':>10s}")
    print(f"{'L (nm)':>14s} {275:10.0f} {g.length * 1e9:10.0f}")
    print(f"{'h (nm)':>14s} {11:10.0f} {g.thickness * 1e9:10.0f}")
    print(f"{'g0 (nm)':>14s} {11:10.0f} {g.gap * 1e9:10.0f}")
    print(f"{'gmin (nm)':>14s} {3.6:10.1f} {g.contact_gap * 1e9:10.1f}")
    print(f"{'Ron (kOhm)':>14s} {2.0:10.1f} {relay.circuit.r_on / 1e3:10.1f}")
    print(f"{'Con (aF)':>14s} {20.0:10.1f} {relay.circuit.c_on * 1e18:10.1f}")
    print(f"{'Coff (aF)':>14s} {6.7:10.1f} {relay.circuit.c_off * 1e18:10.1f}")
    print(f"derived: Vpi = {relay.pull_in_voltage:.2f} V, "
          f"Vpo = {relay.pull_out_voltage:.2f} V "
          f"(paper: ~1 V CMOS-compatible operation)")
    print(f"mechanical switching delay at 1.2x Vpi: {delay * 1e9:.2f} ns "
          f"(paper: > 1 ns — why relays are for static routing only)")

    assert relay.circuit is SCALED_22NM_CIRCUIT
    assert relay.circuit.r_on == pytest.approx(2e3)
    assert relay.circuit.c_on == pytest.approx(20e-18)
    assert relay.circuit.c_off == pytest.approx(6.7e-18)
    assert 0.8 < relay.pull_in_voltage < 1.3
    assert 0 < relay.pull_out_voltage < relay.pull_in_voltage
    assert delay > 1e-9
