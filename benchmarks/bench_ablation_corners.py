"""Ablation — do the headline claims survive process corners?

The paper evaluates at the typical 22nm corner.  This ablation
re-evaluates baseline-vs-optimised CMOS-NEM at the classic five
process corners: the NEM advantages should *grow* at leaky corners
(relays do not leak at all, so the worse the silicon, the bigger the
win) and persist at slow ones.
"""

import pytest

from repro.circuits.corners import CORNERS, corner_technology
from repro.circuits.ptm import PTM_22NM
from repro.core import Comparison, baseline_variant, evaluate_design, optimized_nem_variant
from repro.netlist import ALTERA4_PARAMS

from conftest import BENCH_SCALE


def make_runner(flow_cache, bench_arch):
    params = ALTERA4_PARAMS[2].scaled(BENCH_SCALE)  # sudoku_check

    def run():
        flow = flow_cache.flow(params)
        rows = {}
        for name in CORNERS:
            tech = corner_technology(PTM_22NM, name)
            base = evaluate_design(flow, baseline_variant(bench_arch, tech))
            nem = evaluate_design(
                flow,
                optimized_nem_variant(bench_arch, 8.0, tech),
                frequency=base.frequency,
            )
            rows[name] = (base, Comparison.of(base, nem))
        return rows

    return run


@pytest.mark.benchmark(group="ablation")
def test_ablation_process_corners(benchmark, flow_cache, bench_arch):
    rows = benchmark.pedantic(make_runner(flow_cache, bench_arch), rounds=1, iterations=1)

    print("\n=== Ablation: headline ratios across process corners ===")
    print(f"{'corner':>7s} {'base crit ns':>13s} {'base leak mW':>13s} "
          f"{'speedup':>8s} {'dyn.red':>8s} {'leak.red':>9s}")
    for name, (base, cmp) in rows.items():
        print(f"{name:>7s} {base.critical_path * 1e9:13.2f} "
              f"{base.total_leakage * 1e3:13.3f} {cmp.speedup:8.2f} "
              f"{cmp.dynamic_reduction:8.2f} {cmp.leakage_reduction:9.2f}")

    # The claims hold at every corner...
    for name, (_base, cmp) in rows.items():
        assert cmp.leakage_reduction > 3.0, name
        assert cmp.dynamic_reduction > 1.3, name
        assert cmp.speedup > 0.9, name
    # ...and the leakage *ratio* is corner-stable: the CMOS-NEM FPGA's
    # residual leakage (wire buffers, LUTs) scales with the corner just
    # like the baseline's, so the reduction is a property of what was
    # removed, not of the silicon's absolute leakiness.
    leak = [cmp.leakage_reduction for _b, cmp in rows.values()]
    assert (max(leak) - min(leak)) / min(leak) < 0.05
    # Baseline leakage itself orders FF > TT > SS (sanity), while the
    # slow corner keeps the biggest relative speed win (Vt drop hurts
    # high-Vt silicon the most).
    base_leak = {name: b.total_leakage for name, (b, _c) in rows.items()}
    assert base_leak["ff"] > base_leak["tt"] > base_leak["ss"]
    speedups = {name: cmp.speedup for name, (_b, cmp) in rows.items()}
    assert speedups["ss"] > speedups["ff"]
