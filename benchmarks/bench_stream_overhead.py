"""Disabled-path cost of the live telemetry plane.

The streaming instrumentation added to the PathFinder iteration loop,
the Wmin probes and the repair ladder is gated the same way
everywhere: a `get_publisher()` hoisted out of the loop plus one
``pub.enabled`` attribute check per iteration.  This bench measures
that primitive directly, counts how many such checks a real routed
flow executes, and asserts the total is under 1% of the flow's wall
time — the "zero measurable overhead when disabled" contract from
DESIGN.md Sec. 5f, kept honest with a generous 10x margin on the
call-site count.
"""

import time

import pytest

from repro.obs.stream import NULL_PUBLISHER, get_publisher

from conftest import bench_suite_params

#: Tight timing loop iterations for the per-check measurement.
GUARD_OPS = 200_000


def _guard_loop(n):
    """The exact disabled-path pattern at every instrumented site."""
    pub = get_publisher()
    hits = 0
    for _ in range(n):
        if pub.enabled:
            hits += 1  # pragma: no cover - null publisher is disabled
    return hits


def _time_s(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="stream-overhead")
def test_disabled_path_under_one_percent(benchmark, flow_cache):
    assert get_publisher() is NULL_PUBLISHER

    params = bench_suite_params()[0]
    flow_wall_s = _time_s(flow_cache.flow, params)
    flow = flow_cache.flow(params)  # cached: the timed call built it

    guard_s = benchmark.pedantic(
        _time_s, args=(_guard_loop, GUARD_OPS), rounds=3, iterations=1)
    per_check_s = _time_s(_guard_loop, GUARD_OPS) / GUARD_OPS

    # Instrumented sites: one check per PathFinder iteration, per Wmin
    # probe, per repair rung — call it 10x the iteration count plus a
    # constant floor, a deliberate over-estimate.
    checks = 10 * max(flow.routing.iterations, 1) + 1000
    overhead_s = checks * per_check_s
    ratio = overhead_s / flow_wall_s

    print(f"\n=== Telemetry disabled-path overhead ===")
    print(f"flow wall: {flow_wall_s:.3f}s ({flow.routing.iterations} route "
          f"iterations), per-check {per_check_s * 1e9:.0f}ns, "
          f"{checks} checks budgeted -> {100 * ratio:.4f}% overhead")
    assert guard_s >= 0
    assert ratio < 0.01
