"""Methodology check — are the headline ratios scale-stable?

DESIGN.md Sec. 6 substitutes proportionally scaled circuits for the
paper's 10k-17k-LUT workloads.  This bench validates the substitution:
the CMOS-NEM-vs-baseline ratios are evaluated at several scales of the
same circuit and must drift only mildly, so extrapolation to the
paper's full-size circuits is justified.
"""

import pytest

from repro.arch.params import ArchParams
from repro.core import Comparison, baseline_variant, evaluate_design, optimized_nem_variant
from repro.netlist import ALTERA4_PARAMS, generate
from repro.vpr import run_flow

SCALES = (0.01, 0.02, 0.04)
ARCH = ArchParams(channel_width=64)


def run_scales():
    base_params = ALTERA4_PARAMS[0]  # ava, 12254 LUTs at full size
    rows = []
    for scale in SCALES:
        netlist = generate(base_params.scaled(scale))
        flow = run_flow(netlist, ARCH, seed=1)
        assert flow.success, f"scale {scale} unroutable"
        base = evaluate_design(flow, baseline_variant(ARCH))
        nem = evaluate_design(
            flow, optimized_nem_variant(ARCH, 8.0), frequency=base.frequency
        )
        rows.append((scale, netlist.num_luts, Comparison.of(base, nem)))
    return rows


@pytest.mark.benchmark(group="methodology")
def test_scale_sensitivity(benchmark):
    rows = benchmark.pedantic(run_scales, rounds=1, iterations=1)

    print("\n=== Methodology: ratio stability vs workload scale ===")
    print(f"{'scale':>7s} {'LUTs':>6s} {'speedup':>8s} {'dyn.red':>8s} {'leak.red':>9s}")
    for scale, luts, cmp in rows:
        print(f"{scale:7.2f} {luts:6d} {cmp.speedup:8.2f} {cmp.dynamic_reduction:8.2f} "
              f"{cmp.leakage_reduction:9.2f}")

    leaks = [cmp.leakage_reduction for _s, _l, cmp in rows]
    dyns = [cmp.dynamic_reduction for _s, _l, cmp in rows]
    # Leakage reduction is a fabric property: flat across scales.
    assert (max(leaks) - min(leaks)) / min(leaks) < 0.10
    # Dynamic reduction drifts mildly (clock-tree share shrinks as
    # circuits grow) but stays within a narrow band.
    assert (max(dyns) - min(dyns)) / min(dyns) < 0.25
    # The effect is present at every scale.
    for _s, _l, cmp in rows:
        assert cmp.leakage_reduction > 4.0
        assert cmp.dynamic_reduction > 1.3
