"""Robustness — headline ratios across placement seeds and activities.

Two stability checks the paper's tables implicitly assume:

* **seed robustness** — annealing and negotiated routing are
  stochastic; the reductions must not be artifacts of one placement;
* **activity robustness** — the dynamic-power reduction must not hinge
  on the assumed primary-input switching activity.
"""

import pytest

from repro.arch.params import ArchParams
from repro.core import Comparison, baseline_variant, evaluate_design, optimized_nem_variant
from repro.core.robustness import format_study, seed_sweep
from repro.netlist import MCNC20_PARAMS, generate
from repro.power.activity import ActivityModel, estimate_activities

from conftest import BENCH_SCALE


def run_robustness():
    params = next(p for p in MCNC20_PARAMS if p.name == "frisc").scaled(BENCH_SCALE * 2)
    netlist = generate(params)
    arch = ArchParams(channel_width=64)
    study = seed_sweep(netlist, arch, seeds=(1, 2, 3, 4), downsize=8.0)

    # Activity sensitivity on one routed seed.
    from repro.vpr.flow import run_flow

    flow = run_flow(netlist, arch, seed=1)
    assert flow.success
    activity_rows = []
    for alpha in (0.1, 0.2, 0.4):
        model = ActivityModel(input_activity=alpha)
        activities = estimate_activities(netlist, model)
        base = evaluate_design(flow, baseline_variant(arch), activities=activities)
        nem = evaluate_design(
            flow, optimized_nem_variant(arch, 8.0),
            activities=activities, frequency=base.frequency,
        )
        activity_rows.append((alpha, Comparison.of(base, nem)))
    return study, activity_rows


@pytest.mark.benchmark(group="robustness")
def test_headline_robustness(benchmark):
    study, activity_rows = benchmark.pedantic(run_robustness, rounds=1, iterations=1)

    print("\n=== Robustness: placement seeds ===")
    print(format_study(study))
    print("\n=== Robustness: input switching activity ===")
    print(f"{'PI activity':>12s} {'dyn.red':>8s} {'leak.red':>9s}")
    for alpha, cmp in activity_rows:
        print(f"{alpha:12.1f} {cmp.dynamic_reduction:8.2f} {cmp.leakage_reduction:9.2f}")

    stats = study.stats()
    assert not study.failed_seeds
    assert stats["leakage_reduction"].minimum > 4.0
    assert stats["leakage_reduction"].relative_spread < 0.25
    assert stats["dynamic_reduction"].relative_spread < 0.25
    # Dynamic reduction moves only mildly with the activity assumption
    # (leakage not at all — it has no activity dependence).
    dyns = [cmp.dynamic_reduction for _a, cmp in activity_rows]
    leaks = [cmp.leakage_reduction for _a, cmp in activity_rows]
    assert (max(dyns) - min(dyns)) / min(dyns) < 0.30
    assert max(leaks) - min(leaks) < 1e-9
