"""Robustness — headline ratios across placement seeds and activities,
plus routability under injected relay defects.

Three stability checks the paper's tables implicitly assume:

* **seed robustness** — annealing and negotiated routing are
  stochastic; the reductions must not be artifacts of one placement;
* **activity robustness** — the dynamic-power reduction must not hinge
  on the assumed primary-input switching activity;
* **defect robustness** — NEM relays wear out (paper Sec. 1's limited
  endurance); the flow must absorb percent-level stuck faults through
  incremental self-repair, reproducibly.
"""

import pytest

from repro.arch.params import ArchParams
from repro.core import Comparison, baseline_variant, evaluate_design, optimized_nem_variant
from repro.core.robustness import format_study, seed_sweep
from repro.faults import run_defect_sweep
from repro.netlist import MCNC20_PARAMS, generate
from repro.power.activity import ActivityModel, estimate_activities

from conftest import BENCH_SCALE


def run_robustness():
    params = next(p for p in MCNC20_PARAMS if p.name == "frisc").scaled(BENCH_SCALE * 2)
    netlist = generate(params)
    arch = ArchParams(channel_width=64)
    study = seed_sweep(netlist, arch, seeds=(1, 2, 3, 4), downsize=8.0)

    # Activity sensitivity on one routed seed.
    from repro.vpr.flow import run_flow

    flow = run_flow(netlist, arch, seed=1)
    assert flow.success
    activity_rows = []
    for alpha in (0.1, 0.2, 0.4):
        model = ActivityModel(input_activity=alpha)
        activities = estimate_activities(netlist, model)
        base = evaluate_design(flow, baseline_variant(arch), activities=activities)
        nem = evaluate_design(
            flow, optimized_nem_variant(arch, 8.0),
            activities=activities, frequency=base.frequency,
        )
        activity_rows.append((alpha, Comparison.of(base, nem)))
    return study, activity_rows


@pytest.mark.benchmark(group="robustness")
def test_headline_robustness(benchmark):
    study, activity_rows = benchmark.pedantic(run_robustness, rounds=1, iterations=1)

    print("\n=== Robustness: placement seeds ===")
    print(format_study(study))
    print("\n=== Robustness: input switching activity ===")
    print(f"{'PI activity':>12s} {'dyn.red':>8s} {'leak.red':>9s}")
    for alpha, cmp in activity_rows:
        print(f"{alpha:12.1f} {cmp.dynamic_reduction:8.2f} {cmp.leakage_reduction:9.2f}")

    stats = study.stats()
    assert not study.failed_seeds
    assert stats["leakage_reduction"].minimum > 4.0
    assert stats["leakage_reduction"].relative_spread < 0.25
    assert stats["dynamic_reduction"].relative_spread < 0.25
    # Dynamic reduction moves only mildly with the activity assumption
    # (leakage not at all — it has no activity dependence).
    dyns = [cmp.dynamic_reduction for _a, cmp in activity_rows]
    leaks = [cmp.leakage_reduction for _a, cmp in activity_rows]
    assert (max(dyns) - min(dyns)) / min(dyns) < 0.30
    assert max(leaks) - min(leaks) < 1e-9


DEFECT_RATES = (0.005, 0.01, 0.02)
DEFECT_CAMPAIGNS = 10
DEFECT_ARCH = ArchParams(channel_width=56)


def run_defect_yield():
    params = next(p for p in MCNC20_PARAMS if p.name == "tseng").scaled(BENCH_SCALE)
    netlist = generate(params)
    sweep = run_defect_sweep(
        netlist, DEFECT_ARCH, rates=DEFECT_RATES,
        campaigns=DEFECT_CAMPAIGNS, base_seed=0, seed=1,
    )
    # Reproducibility arm: resample the 1% rate in a fresh sweep — the
    # outcomes are pure functions of (campaign seed, fabric key), so
    # every digest must land bit-identically.
    again = run_defect_sweep(
        netlist, DEFECT_ARCH, rates=(0.01,),
        campaigns=DEFECT_CAMPAIGNS, base_seed=0, seed=1,
    )
    return sweep, again


@pytest.mark.benchmark(group="robustness")
def test_defect_yield_curve(benchmark):
    sweep, again = benchmark.pedantic(run_defect_yield, rounds=1, iterations=1)

    print(f"\n=== Robustness: stuck-fault yield (tseng @ "
          f"W={sweep.channel_width}, {DEFECT_CAMPAIGNS} campaigns/rate) ===")
    print(f"{'rate':>7s} {'defects':>8s} {'yield':>6s} {'increm.':>8s} "
          f"{'ripped':>7s} {'wl.ovh':>7s}")
    curve = sweep.yield_curve()
    for row in curve:
        print(f"{row['rate']:7.3%} {row['mean_defects']:8.1f} "
              f"{row['yield']:6.0%} {row['incremental_yield']:8.0%} "
              f"{row['mean_nets_ripped']:7.1f} {row['wirelength_overhead']:7.1%}")

    # The clean fabric always routes (run_defect_sweep raises otherwise),
    # and every campaign at every swept rate ends in a legal routing.
    assert all(row["yield"] == 1.0 for row in curve)
    # >= 90% of 1%-stuck-open campaigns recover on the cheapest rung —
    # victim nets rerouted, no full reroute, healthy trees untouched.
    at_1pct = next(row for row in curve if row["rate"] == 0.01)
    assert at_1pct["incremental_yield"] >= 0.9
    # Bit-reproducible from (campaign seed, fabric key).
    assert again.clean_digest == sweep.clean_digest
    rerun = {o.campaign_seed: o for o in again.outcomes}
    for outcome in sweep.at_rate(0.01):
        twin = rerun[outcome.campaign_seed]
        assert twin.defect_digest == outcome.defect_digest
        assert twin.routing_digest == outcome.routing_digest
        assert twin.stage == outcome.stage
