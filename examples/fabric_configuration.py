#!/usr/bin/env python
"""From application to configured relay fabric, visually.

Routes a circuit through the CAD flow, renders the floorplan and the
channel-congestion heat map, overlays the highest-fanout net, then
extracts the relay bitstream and programs every tile array through the
half-select protocol — the complete bridge between the paper's device
demonstration (Sec. 2) and its architecture study (Sec. 3).

Run:  python examples/fabric_configuration.py
"""

from repro.arch import ArchParams, build_inventory
from repro.config import extract_bitstream, program_fabric, verify_bitstream_connectivity
from repro.netlist import GeneratorParams, generate
from repro.vpr import (
    build_route_nets,
    render_congestion,
    render_net,
    render_placement,
    run_flow,
    utilization_summary,
)

ARCH = ArchParams(channel_width=48)


def main() -> None:
    netlist = generate(GeneratorParams("fabric", num_luts=150, ff_fraction=0.3, seed=8))
    print(f"circuit: {netlist}\n")
    flow = run_flow(netlist, ARCH)
    assert flow.success

    print("=== Floorplan ('#' logic block, digits = I/Os per pad tile) ===")
    print(render_placement(flow.placement))

    summary = utilization_summary(flow.routing, flow.graph)
    print(f"\n=== Channel congestion (digit = 10 x utilisation; W = {ARCH.channel_width}) ===")
    print(render_congestion(flow.routing, flow.graph))
    print(f"mean {100 * summary['mean']:.0f}%, peak {100 * summary['max']:.0f}% "
          f"over {summary['positions']} channel positions")

    nets = build_route_nets(flow.placement)
    big = max(nets, key=lambda n: len(n.sink_tiles))
    print(f"\n=== Route of highest-fanout net {big.name!r} "
          f"(S source, T sinks, + wires) ===")
    print(render_net(flow.routing, flow.graph, big.name))

    print("\n=== Relay bitstream and half-select programming ===")
    bitstream = extract_bitstream(flow.routing, flow.graph)
    inventory = build_inventory(ARCH)
    print(f"conducting switches: {bitstream.total_switches} across "
          f"{len(bitstream.tiles)} tiles "
          f"({100 * bitstream.utilization(inventory.routing_switches):.1f}% of the "
          f"used tiles' routing relays)")
    report = program_fabric(bitstream)
    print(f"programmed {report.arrays_programmed} tile arrays in "
          f"{report.row_steps} half-select row steps; "
          f"{report.relays_closed} relays closed; failures: {len(report.failures)}")
    ok = verify_bitstream_connectivity(bitstream, flow.routing, flow.graph)
    print(f"connectivity reconstructed from programmed relays: {ok}")
    print("\nno SRAM cell anywhere in the routing fabric — every switch is a")
    print("relay configured by three voltage levels (paper Secs. 2.2, 3.2)")


if __name__ == "__main__":
    main()
