#!/usr/bin/env python
"""Quickstart: the three layers of the library in ~60 lines.

1. Device — build the paper's relays, sweep their hysteretic I-V.
2. Crossbar — program a 2x2 routing crossbar with half-select.
3. FPGA — evaluate a CMOS-NEM FPGA against a CMOS-only baseline.

Run:  python examples/quickstart.py
"""

from repro.nemrelay import fabricated_relay, scaled_relay, sweep_iv
from repro.crossbar import PAPER_2X2_VOLTAGES, HalfSelectProgrammer, uniform_crossbar
from repro.arch import ArchParams
from repro.netlist import GeneratorParams, generate
from repro.vpr import run_flow
from repro.core import baseline_variant, optimized_nem_variant, evaluate_design, Comparison


def device_demo() -> None:
    print("=== 1. NEM relay device (paper Fig. 2b / Fig. 11) ===")
    fab = fabricated_relay()
    print(f"fabricated (23um beam, in oil): Vpi = {fab.pull_in_voltage:.2f} V, "
          f"Vpo = {fab.pull_out_voltage:.2f} V (measured: 6.2 V / 2-3.4 V)")
    scaled = scaled_relay()
    print(f"22nm-scaled (275nm beam):       Vpi = {scaled.pull_in_voltage:.2f} V, "
          f"Vpo = {scaled.pull_out_voltage:.2f} V (paper: ~1 V operation)")
    curve = sweep_iv(fab)
    print(f"swept I-V: pull-in observed at {curve.pull_in_observed:.2f} V, "
          f"hysteresis window {curve.hysteresis_window:.2f} V\n")


def crossbar_demo() -> None:
    print("=== 2. Half-select crossbar programming (paper Fig. 5) ===")
    xbar = uniform_crossbar(2, 2, fabricated_relay().model)
    programmer = HalfSelectProgrammer(xbar, PAPER_2X2_VOLTAGES)
    targets = {(0, 0), (1, 1)}
    configured = programmer.program(targets)
    print(f"programmed {sorted(targets)} with Vhold=5.2 V, Vselect=0.8 V "
          f"-> closed: {sorted(configured)}")
    outputs = xbar.route_signals([0.5, -0.5])
    print(f"routing test (anti-phase 0.5 V pulses): drains read {outputs}")
    programmer.erase()
    print(f"after reset: closed = {sorted(xbar.configuration())}\n")


def fpga_demo() -> None:
    print("=== 3. CMOS-NEM FPGA evaluation (paper Sec. 3) ===")
    arch = ArchParams(channel_width=56)  # Table 1 params, scaled W
    netlist = generate(GeneratorParams("demo", num_luts=120, ff_fraction=0.3, seed=1))
    print(f"circuit: {netlist}")
    flow = run_flow(netlist, arch)
    print(f"pack/place/route: {flow.clustered.num_clusters} LBs, "
          f"routed = {flow.success} ({flow.routing.iterations} PathFinder iterations)")
    base = evaluate_design(flow, baseline_variant(arch))
    nem = evaluate_design(
        flow, optimized_nem_variant(arch, downsize=8.0), frequency=base.frequency
    )
    cmp = Comparison.of(base, nem)
    print(f"baseline  : crit {base.critical_path * 1e9:6.2f} ns, "
          f"dyn {base.total_dynamic * 1e3:6.3f} mW, leak {base.total_leakage * 1e3:6.3f} mW")
    print(f"CMOS-NEM  : crit {nem.critical_path * 1e9:6.2f} ns, "
          f"dyn {nem.total_dynamic * 1e3:6.3f} mW, leak {nem.total_leakage * 1e3:6.3f} mW")
    print(f"reductions: dynamic {cmp.dynamic_reduction:.2f}x, "
          f"leakage {cmp.leakage_reduction:.2f}x, area {cmp.area_reduction:.2f}x, "
          f"speed-up {cmp.speedup:.2f}x")
    print("(paper headline: 2x dynamic, 10x leakage, 2x area, no speed penalty)")


if __name__ == "__main__":
    device_demo()
    crossbar_demo()
    fpga_demo()
