#!/usr/bin/env python
"""The paper's design technique, in isolation and in context.

Part 1 recreates the Sec. 3.4 buffer redesign at circuit level: size a
delay-optimal inverter chain for a segment-wire load, then re-design
it "pretending that it drives a smaller capacitive load (up to 8-times
smaller)" and tabulate the delay / energy / leakage / area trade-off.

Part 2 applies the full technique to a routed circuit, sweeping the
pretend factor into the Fig. 12 trade-off curves and marking the
preferred (no-speed-penalty) corner.

Run:  python examples/buffer_sweep.py
"""

from repro.arch import ArchParams, segment_wire_length
from repro.circuits import PTM_22NM, downsized_chain, optimal_chain
from repro.core import (
    baseline_variant,
    fig12_series,
    format_headline,
    headline_summary,
    optimized_nem_variant,
    sweep_circuit,
)
from repro.netlist import GeneratorParams, generate
from repro.vpr import run_flow

ARCH = ArchParams(channel_width=56)
TECH = PTM_22NM.transistor


def part1_chain_redesign() -> None:
    print("=== Part 1: wire-buffer redesign (paper Sec. 3.4) ===\n")
    variant = optimized_nem_variant(ARCH, 1.0)
    seg_m = segment_wire_length(ARCH, variant.tile_pitch_m)
    c_load = PTM_22NM.interconnect.wire_capacitance(seg_m)
    print(f"L=4 segment at pitch {variant.tile_pitch_m * 1e6:.1f} um -> "
          f"{seg_m * 1e6:.0f} um wire, load {c_load * 1e15:.1f} fF\n")
    reference = optimal_chain(TECH, c_load)
    print(f"{'pretend /':>10s} {'stages':>7s} {'delay ps':>9s} {'energy fJ':>10s} "
          f"{'leak nW':>8s} {'rel.area':>9s}")
    for factor in (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0):
        chain = downsized_chain(TECH, c_load, factor)
        print(f"{factor:10.1f} {chain.num_stages:7d} "
              f"{chain.delay(c_load) * 1e12:9.1f} "
              f"{chain.switching_energy(c_load) * 1e15:10.2f} "
              f"{chain.leakage_power() * 1e9:8.1f} "
              f"{chain.total_width / reference.total_width:9.2f}")
    print("\nan 8x pretend factor cuts chain leakage ~10x for a ~2x stage delay —")
    print("affordable because NEM routing already removed the Vt-drop penalty.\n")


def part2_fig12_sweep() -> None:
    print("=== Part 2: Fig. 12 power-speed trade-off on a routed circuit ===\n")
    netlist = generate(GeneratorParams("sweep", num_luts=140, ff_fraction=0.3, seed=21))
    flow = run_flow(netlist, ARCH)
    assert flow.success
    curve = sweep_circuit(flow, ARCH)
    series = fig12_series(curve)
    print(f"{'downsize':>9s} {'speed-up':>9s} {'dyn.reduction':>14s} {'leak.reduction':>15s}")
    corner = curve.preferred_corner()
    for ds, sp, dyn, leak in zip(
        series["downsize"], series["speedup"],
        series["dynamic_reduction"], series["leakage_reduction"],
    ):
        marker = "  <- preferred corner" if ds == corner.downsize else ""
        print(f"{ds:9.1f} {sp:9.2f} {dyn:14.2f} {leak:15.2f}{marker}")
    print()
    print(format_headline(headline_summary([curve])))


if __name__ == "__main__":
    part1_chain_redesign()
    part2_fig12_sweep()
