#!/usr/bin/env python
"""Reproduce the paper's 2x2 crossbar demonstration (Fig. 5).

Runs the full program / test / reset session for the two
configurations shown in Figs. 5b and 5c, renders the oscilloscope-style
waveforms as ASCII traces, and then exhaustively verifies all 16
possible 2x2 configurations (the paper: "all configurations
exhaustively verified").

Run:  python examples/crossbar_demo.py
"""

from repro.crossbar import (
    PAPER_2X2_VOLTAGES,
    exhaustive_verification,
    simulate_session,
    uniform_crossbar,
)
from repro.nemrelay import (
    ActuationModel,
    CROSSBAR_MEASURED_CIRCUIT,
    FABRICATED_DEVICE,
    OIL,
    POLY_PLATINUM,
)

MODEL = ActuationModel(POLY_PLATINUM, FABRICATED_DEVICE, OIL)


def make_crossbar():
    return uniform_crossbar(2, 2, MODEL, circuit=CROSSBAR_MEASURED_CIRCUIT)


def ascii_trace(times, values, v_lo, v_hi, width=72, height=5) -> str:
    """Render one waveform as a small ASCII strip chart."""
    rows = [[" "] * width for _ in range(height)]
    t_max = times[-1] if times else 1.0
    span = (v_hi - v_lo) or 1.0
    for t, v in zip(times, values):
        col = min(int(t / t_max * (width - 1)), width - 1)
        row = height - 1 - min(int((v - v_lo) / span * (height - 1)), height - 1)
        rows[row][col] = "#"
    return "\n".join("".join(r) for r in rows)


def show_session(label, targets):
    print(f"--- Configuration {label}: close {sorted(targets)} ---")
    session = simulate_session(make_crossbar(), PAPER_2X2_VOLTAGES, targets)
    t_prog, t_test = session.phase_bounds
    total = session.times[-1]
    print(f"phases: program [0, {t_prog:.0f}), test [{t_prog:.0f}, {t_test:.0f}), "
          f"reset [{t_test:.0f}, {total:.0f}) (arbitrary time units)")
    print(f"programmed configuration: {sorted(session.configuration)}; "
          f"reset released all relays: {session.reset_ok}")
    v_lo = min(min(tr) for tr in session.gates.values()) - 0.3
    v_hi = max(max(tr) for tr in session.gates.values()) + 0.3
    for r in range(2):
        print(f"Gate{r + 1} (row line, V):")
        print(ascii_trace(session.times, session.gates[r], v_lo, v_hi))
    for c in range(2):
        print(f"Beam{c + 1} (column drive, V):")
        print(ascii_trace(session.times, session.beams[c], -1.0, v_hi))
    for r in range(2):
        print(f"Drain{r + 1} (read-out, V):  peak |amplitude| during test = "
              f"{session.drain_amplitude(r):.2f} V")
        print(ascii_trace(session.times, session.drains[r], -0.6, 0.6))
    print()


def main() -> None:
    print("2x2 NEM relay programmable routing crossbar (paper Sec. 2.3)")
    print(f"device: Vpi = {MODEL.pull_in:.2f} V, Vpo = {MODEL.pull_out:.2f} V; "
          f"programming at Vhold = {PAPER_2X2_VOLTAGES.v_hold} V, "
          f"Vselect = {PAPER_2X2_VOLTAGES.v_select} V\n")
    # The two example configurations of Figs. 5b / 5c.
    show_session("Fig. 5b", {(0, 0), (1, 1)})
    show_session("Fig. 5c", {(0, 1)})

    print("--- Exhaustive verification of all 16 configurations ---")
    results = exhaustive_verification(make_crossbar, PAPER_2X2_VOLTAGES, rows=2, cols=2)
    passed = sum(results.values())
    for targets in sorted(results, key=lambda t: (len(t), sorted(t))):
        status = "ok" if results[targets] else "FAIL"
        print(f"  {sorted(targets)!s:32s} {status}")
    print(f"\n{passed}/{len(results)} configurations program, verify and reset correctly")


if __name__ == "__main__":
    main()
