#!/usr/bin/env python
"""Variation study: Vpi/Vpo distributions and programming margins.

Reproduces the paper's Fig. 6 experiment in simulation: sample 100
relays with fabrication-dimension variation, plot their Vpi/Vpo
histograms as ASCII, solve for half-select programming voltages, and
report the (small) noise margins.  Then goes beyond the paper:
programming yield vs array size, and the dimensional-variation budget
needed for large crossbars ("today's FPGAs typically contain millions
of configurable routing switches").

Run:  python examples/variation_yield.py
"""

import numpy as np

from repro.crossbar import analyze_population, required_sigma_for_yield, yield_vs_array_size
from repro.nemrelay import (
    FABRICATED_DEVICE,
    FIG6_VARIATION_SPEC,
    OIL,
    POLY_PLATINUM,
    sample_population,
)


def ascii_histogram(edges, counts, label, symbol):
    print(f"{label}:")
    peak = max(counts.max(), 1)
    for i, count in enumerate(counts):
        if count == 0:
            continue
        bar = symbol * max(1, int(30 * count / peak))
        print(f"  {edges[i]:5.2f}-{edges[i + 1]:5.2f} V |{bar} {count}")


def main() -> None:
    print("=== Fig. 6: Vpi / Vpo distributions of 100 relays ===\n")
    population = sample_population(
        POLY_PLATINUM, FABRICATED_DEVICE, OIL, count=100, spec=FIG6_VARIATION_SPEC
    )
    edges, vpi_counts, vpo_counts = population.histogram(bins=24)
    ascii_histogram(edges, vpo_counts, "Vpo (pull-out)", "o")
    ascii_histogram(edges, vpi_counts, "Vpi (pull-in)", "#")

    print(f"\nVpi in [{population.vpi_min:.2f}, {population.vpi_max:.2f}] V "
          f"(paper: ~5.7-6.9 V); Vpo in [{population.vpo_min:.2f}, "
          f"{population.vpo_max:.2f}] V (paper: ~2-3.4 V)")
    print(f"feasibility rule min{{Vpi-Vpo}} > Vpi_max - Vpi_min: "
          f"{population.min_hysteresis_window:.2f} V > {population.vpi_spread:.2f} V "
          f"-> {population.half_select_feasible()}")

    analysis = analyze_population(population)
    assert analysis.feasible
    v = analysis.voltages
    m = analysis.margins
    print(f"\nsolved programming point: Vhold = {v.v_hold:.2f} V, "
          f"Vselect = {v.v_select:.2f} V")
    print(f"  Vhold + Vselect  = {v.half_select:.2f} V (half select)")
    print(f"  Vhold + 2Vselect = {v.full_select:.2f} V (full select)")
    print("noise margins (paper: 'very small'):")
    print(f"  hold above Vpo,max        : {m.hold_above_vpo:.2f} V")
    print(f"  half-select below Vpi,min : {m.half_select_below_vpi:.2f} V")
    print(f"  full-select above Vpi,max : {m.full_select_above_vpi:.2f} V")

    print("\n=== Beyond the paper: programming yield vs array size ===\n")
    sizes = [16, 64, 256, 1024, 4096]
    yields = yield_vs_array_size(
        POLY_PLATINUM, FABRICATED_DEVICE, OIL, sizes, FIG6_VARIATION_SPEC, trials=60
    )
    print("relays per array   yield (fraction of arrays with a valid (Vhold, Vselect))")
    for size, y in zip(sizes, yields):
        print(f"  {size:12d}     {y:6.2f}  {'#' * int(30 * y)}")

    print("\n=== Variation budget for a million-switch FPGA ===\n")
    scale = required_sigma_for_yield(
        POLY_PLATINUM, FABRICATED_DEVICE, OIL,
        array_size=2048, target_yield=0.95,
        spec=FIG6_VARIATION_SPEC, trials=30,
    )
    print(f"to program 2048-relay arrays at 95% yield, dimensional sigma must "
          f"shrink to {scale:.2f}x of today's process")
    print(f"(i.e. beam-length sigma {100 * FIG6_VARIATION_SPEC.sigma_length:.1f}% -> "
          f"{100 * scale * FIG6_VARIATION_SPEC.sigma_length:.2f}%)")
    print("\nThis quantifies the paper's closing call to 'minimise variations in "
          "Vpi and maximise the hysteresis window'.")


if __name__ == "__main__":
    main()
