#!/usr/bin/env python
"""Full compile: gate netlist -> LUTs -> routed CMOS-NEM FPGA -> relays.

The complete toolchain pass a downstream user would run:

1. start from a gate-level circuit (a random control/datapath mix),
2. technology-map it to 4-LUTs (cut-based, depth-optimal),
3. verify functional equivalence by random simulation,
4. pack / place / route on the paper's architecture,
5. time and power both fabric variants,
6. extract the relay bitstream and program the fabric via half-select.

Run:  python examples/gate_level_compile.py
"""

from repro.arch import ArchParams
from repro.config import extract_bitstream, program_fabric, verify_bitstream_connectivity
from repro.core import Comparison, baseline_variant, evaluate_design, optimized_nem_variant
from repro.netlist import (
    check_equivalence,
    map_to_luts,
    mapping_stats,
    random_gate_circuit,
)
from repro.vpr import run_flow

ARCH = ArchParams(channel_width=56)


def main() -> None:
    print("=== 1. Gate-level circuit ===")
    gates = random_gate_circuit(
        "chip", num_gates=900, num_inputs=24, num_outputs=12, ff_fraction=0.15, seed=12
    )
    print(gates)

    print("\n=== 2. Technology mapping to 4-LUTs ===")
    mapped = map_to_luts(gates, k=4)
    stats = mapping_stats(gates, mapped)
    print(f"{stats['gates']:.0f} gates -> {stats['luts']:.0f} LUTs "
          f"({stats['gates_per_lut']:.2f} gates/LUT), mapped depth {stats['lut_depth']:.0f}")

    print("\n=== 3. Functional equivalence (random simulation) ===")
    ok = check_equivalence(gates, mapped, vectors=256, seed=12)
    print(f"256 random vectors, outputs + FF next-states compared: "
          f"{'EQUIVALENT' if ok else 'MISMATCH'}")
    assert ok

    print("\n=== 4. Pack / place / route ===")
    flow = run_flow(mapped, ARCH)
    assert flow.success
    print(f"{flow.clustered.num_clusters} logic blocks on a "
          f"{flow.placement.grid_width}x{flow.placement.grid_height} grid; "
          f"wirelength {flow.routing.wirelength} tile-spans at W = {ARCH.channel_width}")

    print("\n=== 5. CMOS-only vs CMOS-NEM ===")
    base = evaluate_design(flow, baseline_variant(ARCH))
    nem = evaluate_design(
        flow, optimized_nem_variant(ARCH, downsize=8.0), frequency=base.frequency
    )
    cmp = Comparison.of(base, nem)
    print(f"baseline : {base.critical_path * 1e9:.2f} ns, "
          f"{base.total_dynamic * 1e3:.3f} mW dynamic, "
          f"{base.total_leakage * 1e3:.3f} mW leakage")
    print(f"CMOS-NEM : {nem.critical_path * 1e9:.2f} ns, "
          f"{nem.total_dynamic * 1e3:.3f} mW dynamic, "
          f"{nem.total_leakage * 1e3:.3f} mW leakage")
    print(f"reductions: {cmp.dynamic_reduction:.2f}x dynamic, "
          f"{cmp.leakage_reduction:.2f}x leakage, {cmp.area_reduction:.2f}x area")

    print("\n=== 6. Relay configuration ===")
    bitstream = extract_bitstream(flow.routing, flow.graph)
    report = program_fabric(bitstream)
    verified = verify_bitstream_connectivity(bitstream, flow.routing, flow.graph)
    print(f"{bitstream.total_switches} relays conduct; programmed "
          f"{report.arrays_programmed} arrays with {len(report.failures)} failures; "
          f"connectivity verified: {verified}")
    print("\ngate netlist in, programmed zero-leakage routing fabric out.")


if __name__ == "__main__":
    main()
