#!/usr/bin/env python
"""Full FPGA architecture flow on a paper benchmark circuit.

Walks the paper's Fig. 10 methodology end-to-end on a (scaled) copy of
`ava`, the largest-class Altera benchmark the paper reports:

1. generate the circuit, pack it into N=10 logic blocks,
2. place with simulated annealing,
3. binary-search the minimum channel width Wmin and route at
   W = 1.2 x Wmin (the paper's "low-stress routing"),
4. run static timing and the power models for the CMOS-only baseline
   and both CMOS-NEM designs, printing the paper-style comparison.

Run:  python examples/fpga_flow.py [scale]   (default scale 0.04)
"""

import sys
import time

from repro.arch import ArchParams, PAPER_ARCH
from repro.core import (
    Comparison,
    baseline_variant,
    evaluate_design,
    naive_nem_variant,
    optimized_nem_variant,
)
from repro.netlist import load_circuit
from repro.power import fold_dynamic, fold_leakage, format_table, percentages
from repro.vpr import find_min_channel_width, low_stress_width
from repro.vpr.pack import pack, packing_stats
from repro.vpr.place import place
from repro.vpr.route import route_design
from repro.vpr.flow import FlowResult


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.04
    print(f"=== Paper benchmark 'ava' at scale {scale} "
          f"(full size: 12,254 4-LUTs) ===\n")
    netlist = load_circuit("ava", scale=scale)
    print(f"circuit: {netlist}")

    t0 = time.time()
    clustered = pack(netlist, PAPER_ARCH)
    stats = packing_stats(clustered)
    print(f"packed into {stats['clusters']} LBs "
          f"(fill {100 * stats['avg_fill']:.0f}%, "
          f"avg {stats['avg_inputs']:.1f}/{PAPER_ARCH.inputs_per_lb} inputs) "
          f"[{time.time() - t0:.1f}s]")

    t0 = time.time()
    placement = place(clustered, seed=1)
    print(f"placed on {placement.grid_width}x{placement.grid_height} grid, "
          f"bbox cost {placement.cost:.0f} [{time.time() - t0:.1f}s]")

    t0 = time.time()
    wmin, _res, _graph = find_min_channel_width(placement, PAPER_ARCH, start=16)
    w = low_stress_width(wmin)
    print(f"Wmin = {wmin}; low-stress W = {w} "
          f"(paper at full scale: Wmin -> W = 118) [{time.time() - t0:.1f}s]")

    arch = PAPER_ARCH.with_channel_width(w)
    routing, graph = route_design(placement, arch)
    assert routing.success
    flow = FlowResult(
        netlist=netlist, clustered=clustered, placement=placement,
        routing=routing, graph=graph, channel_width=w,
    )
    print(f"routed: wirelength {routing.wirelength} tile-spans, "
          f"{routing.iterations} iterations\n")

    base = evaluate_design(flow, baseline_variant(arch))
    print(f"--- CMOS-only baseline at 22nm ---")
    print(f"critical path {base.critical_path * 1e9:.2f} ns "
          f"(f_max {1e-6 / base.critical_path:.0f} MHz)")
    print(format_table(fold_dynamic(base.dynamic), "dynamic power (Fig. 9 left)"))
    print(format_table(fold_leakage(base.leakage), "leakage power (Fig. 9 right)"))

    print("\n--- CMOS-NEM designs (at the baseline's clock) ---")
    rows = [
        ("naive (switches+SRAM -> relays)", naive_nem_variant(arch)),
        ("optimised, wire buffers /1", optimized_nem_variant(arch, 1.0)),
        ("optimised, wire buffers /4", optimized_nem_variant(arch, 4.0)),
        ("optimised, wire buffers /8", optimized_nem_variant(arch, 8.0)),
    ]
    print(f"{'design':34s} {'speedup':>8s} {'dyn.red':>8s} {'leak.red':>9s} {'area.red':>9s}")
    for label, variant in rows:
        point = evaluate_design(flow, variant, frequency=base.frequency)
        cmp = Comparison.of(base, point)
        print(f"{label:34s} {cmp.speedup:8.2f} {cmp.dynamic_reduction:8.2f} "
              f"{cmp.leakage_reduction:9.2f} {cmp.area_reduction:9.2f}")
    print("\npaper (full scale): naive 1.3x dyn / 2x leak / 1.8x area; "
          "optimised 2x dyn / 10x leak / 2x area at speed-up >= 1")


if __name__ == "__main__":
    main()
