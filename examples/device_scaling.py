#!/usr/bin/env python
"""NEM relay device exploration: hysteresis, dynamics and scaling.

A device-engineer's tour of the relay substrate:

1. I-V hysteresis sweeps of the fabricated device (Fig. 2b), including
   an ASCII log-current plot with the 100 nA compliance plateau and
   the 10 pA noise floor;
2. pull-in switching transients ("> 1 ns mechanical delay") across
   gate overdrive;
3. technology scaling from the 23 um lab device down to the 22nm
   design point of Fig. 11, including the ~1 V operating claim.

Run:  python examples/device_scaling.py
"""

import math

from repro.nemrelay import (
    ActuationModel,
    AIR,
    POLYSILICON,
    SCALED_22NM_DEVICE,
    fabricated_relay,
    pull_in_transient,
    scaling_table,
    sweep_iv,
    switching_delay,
)


def part1_hysteresis() -> None:
    print("=== 1. I-V hysteresis of the fabricated relay (Fig. 2b) ===\n")
    relay = fabricated_relay()
    curve = sweep_iv(relay, vds=0.1)
    print(f"observed: Vpi = {curve.pull_in_observed:.2f} V, "
          f"Vpo = {curve.pull_out_observed:.2f} V, "
          f"window = {curve.hysteresis_window:.2f} V")
    # ASCII: up-branch '>' and down-branch '<' on a log-current axis.
    print("\nlog10(Ids/A) vs Vgs  ('>' up-sweep, '<' down-sweep):")
    rows = 8
    i_lo, i_hi = math.log10(5e-12), math.log10(2e-7)
    grid = [[" "] * 66 for _ in range(rows)]
    for branch, symbol in ((curve.up_branch(), ">"), (curve.down_branch(), "<")):
        for p in branch:
            col = min(int(p.vgs / 8.5 * 65), 65)
            level = (math.log10(p.ids) - i_lo) / (i_hi - i_lo)
            row = rows - 1 - min(int(level * (rows - 1)), rows - 1)
            grid[row][col] = symbol
    for i, row in enumerate(grid):
        current = 10 ** (i_hi - i * (i_hi - i_lo) / (rows - 1))
        print(f"  {current:8.0e} A |{''.join(row)}")
    print(f"  {'':10s}  0 V {'':54s} 8.5 V")
    print("  (flat bottom = zero off-leakage at the 10 pA noise floor;")
    print("   flat top = the 100 nA measurement compliance)\n")


def part2_dynamics() -> None:
    print("=== 2. Mechanical switching transients ===\n")
    model = ActuationModel(POLYSILICON, SCALED_22NM_DEVICE, AIR)
    print(f"22nm relay: Vpi = {model.pull_in:.2f} V")
    print(f"{'overdrive':>10s} {'switching delay':>16s}")
    for overdrive in (1.05, 1.2, 1.5, 2.0, 3.0):
        delay = switching_delay(model, overdrive=overdrive)
        print(f"{overdrive:10.2f} {delay * 1e9:13.2f} ns")
    print("\n(the paper's point: > 1 ns even scaled, so relays suit static")
    print(" routing configuration, not logic — FPGA switches never toggle")
    print(" during operation)\n")

    transient = pull_in_transient(model, 1.2 * model.pull_in)
    print("pull-in trajectory at 1.2x Vpi (displacement / travel):")
    marks = 12
    for i in range(marks + 1):
        idx = min(int(i / marks * (len(transient.displacements) - 1)),
                  len(transient.displacements) - 1)
        frac = transient.displacements[idx] / SCALED_22NM_DEVICE.travel
        t_ns = transient.times[idx] * 1e9
        print(f"  t = {t_ns:6.2f} ns |{'#' * int(40 * min(frac, 1.0)):40s}| {frac:5.1%}")
    print()


def part3_scaling() -> None:
    print("=== 3. Technology scaling (Fig. 11 design point) ===\n")
    table = scaling_table()
    print(f"{'node':>6s} {'L nm':>8s} {'h nm':>7s} {'g0 nm':>7s} {'gmin nm':>8s} "
          f"{'Vpi V':>7s} {'Vpo V':>7s}")
    for node in sorted(table, reverse=True):
        row = table[node]
        print(f"{node:4d}nm {row['length_nm']:8.0f} {row['thickness_nm']:7.1f} "
              f"{row['gap_nm']:7.1f} {row['contact_gap_nm']:8.1f} "
              f"{row['vpi_v']:7.2f} {row['vpo_v']:7.2f}")
    print("\nat 22nm the relay operates near 1 V — 'CMOS-compatible operation")
    print("voltages (~1V) can be achieved through scaling' (paper Sec. 2.1)")


if __name__ == "__main__":
    part1_hysteresis()
    part2_dynamics()
    part3_scaling()
