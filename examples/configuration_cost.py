#!/usr/bin/env python
"""Whole-fabric configuration cost and endurance for a CMOS-NEM FPGA.

The paper's Sec. 1 argues NEM relay drawbacks vanish for FPGA routing:
switches only move during (re)configuration, FPGAs reconfigure rarely
(~500 lifetime reconfigurations [Kuon 07]) and relays survive billions
of cycles [Kam 09].  This example makes that argument concrete for the
paper's architecture: how long a full configuration takes, what it
costs in energy, and the endurance margin.

Run:  python examples/configuration_cost.py
"""

from repro.arch import PAPER_ARCH, build_inventory
from repro.crossbar import configuration_cost, endurance_margin, solve_voltages
from repro.nemrelay import node_device, scaled_relay, switching_delay


def main() -> None:
    print("=== Configuring a full CMOS-NEM FPGA ===\n")
    inventory = build_inventory(PAPER_ARCH)
    relays_per_tile = inventory.routing_switches + inventory.crossbar_switches
    grid = 60  # a mid-size fabric: 60x60 tiles = 36k LBs / 360k LUTs
    num_relays = relays_per_tile * grid * grid
    print(f"architecture (Table 1, W = {PAPER_ARCH.channel_width}): "
          f"{relays_per_tile} relays per tile")
    print(f"fabric: {grid}x{grid} tiles -> {num_relays / 1e6:.1f} M relays "
          f"('millions of configurable routing switches')\n")

    relay = scaled_relay()
    t_switch = switching_delay(relay.model)
    voltages = solve_voltages([relay.pull_in_voltage], [relay.pull_out_voltage])
    print(f"22nm relay: Vpi = {relay.pull_in_voltage:.2f} V, "
          f"mechanical switching time = {t_switch * 1e9:.1f} ns")
    print(f"programming point: Vhold = {voltages.v_hold:.2f} V, "
          f"Vselect = {voltages.v_select:.2f} V\n")

    print(f"{'programming parallelism':>26s} {'config time':>12s} {'energy':>10s}")
    for parallel, label in ((1, "1 array (serial)"), (grid, "1 per tile row"),
                            (grid * grid, "1 per tile")):
        cost = configuration_cost(
            num_relays=num_relays,
            rows_per_array=PAPER_ARCH.outputs_per_lb + PAPER_ARCH.inputs_per_lb,
            switching_time=t_switch,
            voltages=voltages,
            arrays_in_parallel=parallel,
        )
        print(f"{label:>26s} {cost.total_time * 1e3:9.3f} ms {cost.total_energy * 1e12:7.1f} pJ")
    print("\n(an SRAM FPGA bitstream load is also ms-scale — relay mechanics do")
    print(" not slow configuration down; and holding state costs zero power)\n")

    print("=== Endurance margin ===\n")
    report = endurance_margin()
    print(f"lifetime reconfigurations      : {report.actuations_per_relay / 2:.0f}")
    print(f"actuations per relay (x2 each) : {report.actuations_per_relay:.0f}")
    print(f"demonstrated reliable cycles   : {report.reliable_cycles:.0e}")
    print(f"endurance margin               : {report.margin:.0e}x "
          f"({'sufficient' if report.sufficient else 'INSUFFICIENT'})")

    print("\nCounter-example — relays as *logic* (what the paper avoids):")
    logic = endurance_margin(reconfigurations=10**12, actuations_per_reconfig=1)
    print(f"a relay toggling at 1 GHz for ~17 minutes sees 1e12 actuations -> "
          f"margin {logic.margin:.0e}x ({'ok' if logic.sufficient else 'worn out'})")
    print("hence: relays for static routing, CMOS for logic (paper Sec. 1/4)")


if __name__ == "__main__":
    main()
